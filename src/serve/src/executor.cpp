#include "parowl/serve/executor.hpp"

#include <utility>

namespace parowl::serve {

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kOverloaded:
      return "overloaded";
    case RequestStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case RequestStatus::kParseError:
      return "parse_error";
    case RequestStatus::kUnavailable:
      return "unavailable";
    case RequestStatus::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

Executor::Executor(std::size_t threads, std::size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (threads == 0) {
    threads = 1;
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    const std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

bool Executor::try_submit(Job job) {
  {
    const std::scoped_lock lock(mutex_);
    if (shutdown_ || queue_.size() >= capacity_) {
      return false;
    }
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
  return true;
}

void Executor::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t Executor::queue_depth() const {
  const std::scoped_lock lock(mutex_);
  return queue_.size();
}

void Executor::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with nothing left to drain
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job.run(Clock::now() > job.deadline);
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace parowl::serve
