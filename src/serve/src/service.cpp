#include "parowl/serve/service.hpp"

#include <algorithm>
#include <optional>
#include <ostream>

#include "parowl/obs/obs.hpp"
#include "parowl/query/bgp.hpp"
#include "parowl/query/equality_expand.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::serve {
namespace {

/// Constant predicates of the query's BGP; sets `wildcard` when any atom
/// carries a variable predicate (footprint unbounded).
std::vector<rdf::TermId> footprint_of(const query::SelectQuery& q,
                                      bool* wildcard) {
  std::vector<rdf::TermId> preds;
  for (const rules::Atom& atom : q.where) {
    if (atom.p.is_const()) {
      preds.push_back(atom.p.const_id());
    } else {
      *wildcard = true;
    }
  }
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

}  // namespace

QueryService::QueryService(
    rdf::Dictionary& dict, const ontology::Vocabulary& vocab,
    rdf::TripleStore store, ServiceOptions options,
    std::vector<rdf::Triple> base,
    std::shared_ptr<const reason::EqualityManager> equality)
    : options_(std::move(options)),
      dict_(dict),
      same_as_(vocab.owl_same_as),
      registry_(make_initial_snapshot(std::move(store), std::move(base),
                                      std::move(equality))),
      cache_(options_.cache_shards,
             options_.cache_enabled ? options_.cache_capacity_per_shard : 0),
      parser_(dict),
      updater_(registry_, &cache_, dict, vocab, /*reason_threads=*/1,
               options_.maintain_strategy),
      executor_(std::make_unique<Executor>(options_.threads,
                                           options_.queue_capacity)) {
  obs::configure(options_.obs);
  for (const auto& [name, iri] : options_.prefixes) {
    parser_.add_prefix(name, iri);
  }
}

QueryService::~QueryService() {
  executor_.reset();  // completes pending jobs, joins workers
}

bool QueryService::submit(std::string query_text,
                          std::function<void(const Response&)> done) {
  const auto admitted_at = Executor::Clock::now();
  // The callback outlives the Job on the shed path (the refused Job is
  // destroyed inside try_submit), so it is held through a shared_ptr.
  auto done_ptr = std::make_shared<std::function<void(const Response&)>>(
      std::move(done));

  Executor::Job job;
  if (options_.default_deadline_seconds > 0) {
    job.deadline =
        admitted_at + std::chrono::duration_cast<Executor::Clock::duration>(
                          std::chrono::duration<double>(
                              options_.default_deadline_seconds));
  }
  job.run = [this, text = std::move(query_text), done_ptr,
             admitted_at](bool expired) {
    Response response;
    if (expired) {
      response.status = RequestStatus::kDeadlineExceeded;
      response.snapshot_version = registry_.version();
    } else {
      response = execute_locked(text);
    }
    response.latency_seconds =
        std::chrono::duration<double>(Executor::Clock::now() - admitted_at)
            .count();
    count(response);
    if (*done_ptr) {
      (*done_ptr)(response);
    }
  };

  if (!executor_->try_submit(std::move(job))) {
    Response response;
    response.status = RequestStatus::kOverloaded;
    response.snapshot_version = registry_.version();
    response.latency_seconds =
        std::chrono::duration<double>(Executor::Clock::now() - admitted_at)
            .count();
    count(response);
    if (*done_ptr) {
      (*done_ptr)(response);
    }
    return false;
  }
  return true;
}

Response QueryService::execute(const std::string& query_text) {
  util::Stopwatch watch;
  Response response = execute_locked(query_text);
  response.latency_seconds = watch.elapsed_seconds();
  count(response);
  return response;
}

Response QueryService::execute_locked(const std::string& query_text) {
  PAROWL_COUNT("serve.requests", 1);
  // Per-request spans are strided by ObsOptions.sample_every so a loaded
  // service does not flood the trace buffer.
  std::optional<obs::Span> request_span;
  if (obs::Tracer::global().enabled() &&
      request_seq_.fetch_add(1, std::memory_order_relaxed) %
              obs::sample_stride() ==
          0) {
    request_span.emplace("serve.request");
  }

  Response response;
  const std::string key = normalize_query(query_text);

  // Pin a snapshot first: the answer (cached or computed) is then valid for
  // `snap` or newer, and a stale insert after a concurrent update is caught
  // by the cache's version floor.
  const SnapshotPtr snap = registry_.current();
  response.snapshot_version = snap->version;

  if (auto hit = cache_.lookup(key)) {
    response.cache_hit = true;
    response.results = std::move(*hit);
    if (request_span) {
      request_span->arg({"cache", "hit"});
      request_span->arg({"rows", response.results.size()});
    }
    return response;
  }

  std::optional<query::SelectQuery> parsed;
  std::string error;
  {
    std::optional<obs::Span> parse_span;
    if (request_span) {
      parse_span.emplace("serve.parse");
    }
    // Parsing interns query constants and mutates parser prefix state.
    const std::unique_lock lock(dict_mutex_);
    parsed = parser_.parse(query_text, &error);
  }
  if (!parsed) {
    response.status = RequestStatus::kParseError;
    response.error = error;
    if (request_span) {
      request_span->arg({"status", "parse_error"});
    }
    return response;
  }

  // Evaluation is lock-free: the snapshot is immutable and BGP matching
  // touches only TermIds.  Under equality rewriting the snapshot's store
  // holds representative-space triples, so answers are expanded through the
  // frozen class map before leaving the service (and before caching — a hit
  // must be byte-identical to a miss).
  std::optional<obs::Span> eval_span;
  if (request_span) {
    eval_span.emplace("serve.eval");
  }
  if (snap->equality != nullptr) {
    query::EqualityEvalResult eval = query::evaluate_with_equality(
        snap->store, *parsed, *snap->equality, same_as_);
    if (eval.unsupported) {
      response.status = RequestStatus::kUnsupported;
      response.error = std::move(eval.message);
      if (request_span) {
        request_span->arg({"status", "unsupported"});
      }
      return response;
    }
    response.results = std::move(eval.results);
  } else {
    response.results = query::evaluate(snap->store, *parsed);
  }
  if (eval_span) {
    eval_span->arg({"rows", response.results.size()});
    eval_span.reset();
  }

  CachedResult entry;
  entry.results = response.results;
  entry.predicate_footprint =
      footprint_of(*parsed, &entry.wildcard_predicate);
  entry.version = snap->version;
  cache_.insert(key, std::move(entry));
  if (request_span) {
    request_span->arg({"cache", "miss"});
    request_span->arg({"rows", response.results.size()});
  }
  return response;
}

UpdateOutcome QueryService::apply_update(
    std::span<const rdf::Triple> additions) {
  PAROWL_SPAN("serve.update", {{"additions", additions.size()}});
  // Shared lock: the incremental closure reads term kinds (literal guard)
  // concurrently with result rendering, but must exclude parser interning.
  const std::shared_lock lock(dict_mutex_);
  return updater_.apply(additions);
}

UpdateOutcome QueryService::apply_update(
    std::span<const rdf::Triple> additions,
    std::span<const rdf::Triple> deletions) {
  PAROWL_SPAN("serve.update", {{"additions", additions.size()},
                               {"deletions", deletions.size()}});
  // Shared lock, same as the additions path: maintenance reads term kinds
  // (literal guard) but interns nothing.
  const std::shared_lock lock(dict_mutex_);
  return updater_.apply(additions, deletions);
}

std::string QueryService::render(const query::ResultSet& results) const {
  return with_dict_shared([&results](const rdf::Dictionary& dict) {
    return query::to_text(results, dict);
  });
}

void QueryService::drain() { executor_->wait_idle(); }

rdf::SnapshotStats QueryService::save_snapshot(std::ostream& out) const {
  // Pin the snapshot first: RCU keeps the store alive and immutable while
  // we stream it out, and the shared lock only guards dictionary reads.
  const SnapshotPtr snap = registry_.current();
  PAROWL_SPAN("serve.snapshot", {{"version", snap->version}});
  return with_dict_shared([&out, &snap](const rdf::Dictionary& dict) {
    if (snap->equality != nullptr) {
      const rdf::EqualityClassMap map = snap->equality->export_map();
      return rdf::save_snapshot(out, dict, snap->store, &map);
    }
    return rdf::save_snapshot(out, dict, snap->store);
  });
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.unsupported = unsupported_.load(std::memory_order_relaxed);
  s.updates_applied = updater_.batches_applied();
  s.snapshot_version = registry_.version();
  s.cache = cache_.counters();
  s.latency = latency_;
  obs::publish(s, "serve");
  return s;
}

void QueryService::count(const Response& response) {
  switch (response.status) {
    case RequestStatus::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kParseError:
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kUnavailable:
      // Single-store serving has no unavailable outcome (the snapshot is
      // local); the distributed facade keeps its own counter.
      break;
    case RequestStatus::kUnsupported:
      unsupported_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  latency_.record_seconds(response.latency_seconds);
}

}  // namespace parowl::serve
