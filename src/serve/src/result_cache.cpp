#include "parowl/serve/result_cache.hpp"

#include <algorithm>
#include <functional>

namespace parowl::serve {

std::string normalize_query(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '#') {
      // Comment runs to end of line.
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      pending_space = !out.empty();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

ResultCache::ResultCache(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard) {
  if (shards == 0) {
    shards = 1;
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  const std::size_t h = std::hash<std::string_view>{}(key);
  return *shards_[h % shards_.size()];
}

std::optional<query::ResultSet> ResultCache::lookup(const std::string& key) {
  if (!enabled()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second.results;
}

void ResultCache::insert(const std::string& key, CachedResult entry) {
  if (!enabled()) {
    return;
  }
  // An in-flight query may finish against snapshot v after an update already
  // published v+1 and ran its invalidation pass; caching that answer would
  // resurrect exactly the staleness the pass removed.
  if (entry.version < version_floor_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shard_for(key);
  const std::scoped_lock lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(std::string_view(shard.lru.front().first),
                      shard.lru.begin());
  if (shard.lru.size() > capacity_per_shard_) {
    shard.index.erase(std::string_view(shard.lru.back().first));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ResultCache::on_update(
    std::span<const rdf::TermId> delta_predicates, std::uint64_t new_version) {
  // Raise the floor first so no insert computed against an older snapshot
  // can slip in behind the sweep below.
  version_floor_.store(new_version, std::memory_order_release);
  if (!enabled()) {
    return 0;
  }
  std::vector<rdf::TermId> delta(delta_predicates.begin(),
                                 delta_predicates.end());
  std::sort(delta.begin(), delta.end());

  std::size_t dropped = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const std::scoped_lock lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const CachedResult& entry = it->second;
      const bool stale_version = entry.version < new_version &&
                                 (entry.wildcard_predicate ||
                                  std::ranges::any_of(
                                      entry.predicate_footprint,
                                      [&delta](rdf::TermId p) {
                                        return std::binary_search(
                                            delta.begin(), delta.end(), p);
                                      }));
      if (stale_version) {
        shard.index.erase(std::string_view(it->first));
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

CacheCounters ResultCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.invalidations = invalidations_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  return c;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const std::scoped_lock lock(shard_ptr->mutex);
    total += shard_ptr->lru.size();
  }
  return total;
}

}  // namespace parowl::serve
