#include "parowl/serve/workload.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>

#include "parowl/util/rng.hpp"
#include "parowl/util/strings.hpp"
#include "parowl/util/table.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::serve {
namespace {

/// Shared sink for completion callbacks from any thread.
struct Collector {
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> shed{0};
  std::atomic<std::size_t> deadline_exceeded{0};
  std::atomic<std::size_t> parse_errors{0};
  std::atomic<std::size_t> unavailable{0};
  std::atomic<std::size_t> unsupported{0};
  std::atomic<std::size_t> cache_hits{0};
  LatencyHistogram latency;

  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t answered = 0;

  void record(const Response& response) {
    switch (response.status) {
      case RequestStatus::kOk:
        completed.fetch_add(1, std::memory_order_relaxed);
        if (response.cache_hit) {
          cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case RequestStatus::kOverloaded:
        shed.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kDeadlineExceeded:
        deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kParseError:
        parse_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kUnavailable:
        unavailable.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestStatus::kUnsupported:
        unsupported.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    latency.record_seconds(response.latency_seconds);
    {
      const std::scoped_lock lock(mutex);
      ++answered;
    }
    all_done.notify_all();
  }

  void wait_for(std::size_t expected) {
    std::unique_lock lock(mutex);
    all_done.wait(lock, [&] { return answered >= expected; });
  }
};

/// Exponential draw with the given mean (0 mean -> 0).
double exponential(util::Rng& rng, double mean) {
  if (mean <= 0) {
    return 0.0;
  }
  return -mean * std::log(1.0 - rng.uniform());
}

WorkloadReport finish(const Collector& collector, std::size_t submitted,
                      double wall_seconds) {
  WorkloadReport report;
  report.submitted = submitted;
  report.completed = collector.completed.load();
  report.shed = collector.shed.load();
  report.deadline_exceeded = collector.deadline_exceeded.load();
  report.parse_errors = collector.parse_errors.load();
  report.unavailable = collector.unavailable.load();
  report.unsupported = collector.unsupported.load();
  report.cache_hits = collector.cache_hits.load();
  report.wall_seconds = wall_seconds;
  report.latency = collector.latency;
  return report;
}

WorkloadReport run_open_loop(const SubmitFn& submit,
                             std::span<const std::string> queries,
                             const WorkloadOptions& options) {
  Collector collector;
  util::Rng rng(options.seed);
  const auto interval = std::chrono::duration<double>(
      options.arrival_rate_qps > 0 ? 1.0 / options.arrival_rate_qps : 0.0);
  const auto start = std::chrono::steady_clock::now();

  for (std::size_t i = 0; i < options.total_requests; ++i) {
    // Fixed-rate arrivals: sleep to the schedule, never to the service.
    const auto due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i));
    std::this_thread::sleep_until(due);
    const std::string& q = queries[rng.below(queries.size())];
    submit(q, [&collector](const Response& r) { collector.record(r); });
  }
  collector.wait_for(options.total_requests);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return finish(collector, options.total_requests, wall);
}

WorkloadReport run_closed_loop(const SubmitFn& submit,
                               std::span<const std::string> queries,
                               const WorkloadOptions& options) {
  Collector collector;
  const std::size_t clients = options.clients == 0 ? 1 : options.clients;
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    // Client c issues requests c, c + clients, c + 2*clients, ...
    threads.emplace_back([&, c] {
      util::Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
      for (std::size_t i = c; i < options.total_requests; i += clients) {
        const std::string& q = queries[rng.below(queries.size())];
        std::mutex done_mutex;
        std::condition_variable done_cv;
        bool answered = false;
        submit(q, [&](const Response& r) {
          collector.record(r);
          {
            const std::scoped_lock lock(done_mutex);
            answered = true;
          }
          done_cv.notify_one();
        });
        {
          std::unique_lock lock(done_mutex);
          done_cv.wait(lock, [&] { return answered; });
        }
        const double think = exponential(rng, options.think_seconds);
        if (think > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(think));
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return finish(collector, options.total_requests, wall);
}

}  // namespace

WorkloadReport run_workload(const SubmitFn& submit,
                            std::span<const std::string> queries,
                            const WorkloadOptions& options) {
  if (queries.empty() || options.total_requests == 0) {
    return {};
  }
  return options.mode == WorkloadMode::kOpenLoop
             ? run_open_loop(submit, queries, options)
             : run_closed_loop(submit, queries, options);
}

WorkloadReport run_workload(QueryService& service,
                            std::span<const std::string> queries,
                            const WorkloadOptions& options) {
  return run_workload(
      [&service](const std::string& q,
                 std::function<void(const Response&)> done) {
        return service.submit(q, std::move(done));
      },
      queries, options);
}

std::vector<std::string> load_query_lines(std::istream& in) {
  std::vector<std::string> out;
  std::string line;
  std::string pending;
  while (std::getline(in, line)) {
    std::string_view trimmed = util::trim(line);
    if (pending.empty() && (trimmed.empty() || trimmed.front() == '#')) {
      continue;
    }
    const bool continued = !trimmed.empty() && trimmed.back() == '\\';
    if (continued) {
      trimmed.remove_suffix(1);
      trimmed = util::trim(trimmed);
    }
    if (!pending.empty() && !trimmed.empty()) {
      pending += ' ';
    }
    pending += trimmed;
    if (!continued) {
      if (!pending.empty()) {
        out.push_back(std::move(pending));
      }
      pending.clear();
    }
  }
  if (!pending.empty()) {
    out.push_back(std::move(pending));
  }
  return out;
}

void WorkloadReport::print(std::ostream& os) const {
  util::Table table({"metric", "value"});
  table.add_row({"submitted", std::to_string(submitted)});
  table.add_row({"completed", std::to_string(completed)});
  table.add_row({"shed", std::to_string(shed)});
  table.add_row({"deadline exceeded", std::to_string(deadline_exceeded)});
  table.add_row({"parse errors", std::to_string(parse_errors)});
  table.add_row({"unavailable", std::to_string(unavailable)});
  table.add_row({"unsupported", std::to_string(unsupported)});
  table.add_row({"cache hits", std::to_string(cache_hits)});
  table.add_row({"wall time", util::format_seconds(wall_seconds)});
  table.add_row({"throughput", util::fmt_double(throughput_qps(), 1) + " q/s"});
  table.add_row({"p50", fmt_latency(latency.percentile_seconds(0.50))});
  table.add_row({"p95", fmt_latency(latency.percentile_seconds(0.95))});
  table.add_row({"p99", fmt_latency(latency.percentile_seconds(0.99))});
  table.print(os);
}

}  // namespace parowl::serve
