#include "parowl/serve/stats.hpp"

#include <ostream>

#include "parowl/util/table.hpp"

namespace parowl::serve {

std::string fmt_latency(double seconds) {
  if (seconds < 1e-3) {
    return util::fmt_double(seconds * 1e6, 1) + " us";
  }
  if (seconds < 1.0) {
    return util::fmt_double(seconds * 1e3, 2) + " ms";
  }
  return util::fmt_double(seconds, 2) + " s";
}

obs::FieldList fields(const CacheCounters& c) {
  return {
      {"cache_hits", c.hits},
      {"cache_misses", c.misses},
      {"cache_hit_rate", c.hit_rate()},
      {"cache_evictions", c.evictions},
      {"cache_invalidations", c.invalidations},
      {"cache_rejected", c.rejected},
  };
}

obs::FieldList fields(const ServiceStats& s) {
  obs::FieldList out = {
      {"requests", s.total_requests()},
      {"completed", s.completed},
      {"shed", s.shed},
      {"deadline_exceeded", s.deadline_exceeded},
      {"parse_errors", s.parse_errors},
      {"unsupported", s.unsupported},
      {"shed_rate", s.shed_rate()},
      {"p50_latency_seconds", s.latency.percentile_seconds(0.50)},
      {"p95_latency_seconds", s.latency.percentile_seconds(0.95)},
      {"p99_latency_seconds", s.latency.percentile_seconds(0.99)},
  };
  for (obs::Field& f : fields(s.cache)) {
    out.push_back(std::move(f));
  }
  out.emplace_back("updates_applied", s.updates_applied);
  out.emplace_back("snapshot_version", s.snapshot_version);
  return out;
}

void ServiceStats::print(std::ostream& os) const {
  util::Table table({"metric", "value"});
  obs::print(*this, table);
  table.add_row({"p50 latency", fmt_latency(latency.percentile_seconds(0.50))});
  table.add_row({"p95 latency", fmt_latency(latency.percentile_seconds(0.95))});
  table.add_row({"p99 latency", fmt_latency(latency.percentile_seconds(0.99))});
  table.print(os);
}

}  // namespace parowl::serve
