#include "parowl/serve/stats.hpp"

#include <cmath>
#include <ostream>

#include "parowl/util/table.hpp"

namespace parowl::serve {
namespace {

/// Bucket index for a duration in microseconds: floor(log2(us)), clamped.
int bucket_for(double micros) {
  if (micros < 1.0) {
    return 0;
  }
  const int b = static_cast<int>(std::floor(std::log2(micros)));
  return b >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : b;
}

/// Upper edge of bucket i, in seconds.
double bucket_upper_seconds(int i) {
  return std::ldexp(1.0, i + 1) * 1e-6;
}

}  // namespace

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this != &other) {
    reset();
    merge(other);
  }
  return *this;
}

void LatencyHistogram::record_seconds(double seconds) {
  const int b = bucket_for(seconds * 1e6);
  buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    buckets_[idx].fetch_add(other.buckets_[idx].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  }
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::approximate_total_seconds() const {
  double total = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const auto n = buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    // Geometric midpoint of [2^i, 2^(i+1)) us.
    total += static_cast<double>(n) * std::ldexp(1.0, i) * 1.5 * 1e-6;
  }
  return total;
}

double LatencyHistogram::percentile_seconds(double p) const {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  const double target = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target) {
      return bucket_upper_seconds(i);
    }
  }
  return bucket_upper_seconds(kBuckets - 1);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

std::string fmt_latency(double seconds) {
  if (seconds < 1e-3) {
    return util::fmt_double(seconds * 1e6, 1) + " us";
  }
  if (seconds < 1.0) {
    return util::fmt_double(seconds * 1e3, 2) + " ms";
  }
  return util::fmt_double(seconds, 2) + " s";
}

void ServiceStats::print(std::ostream& os) const {
  util::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(total_requests())});
  table.add_row({"completed", std::to_string(completed)});
  table.add_row({"shed (overloaded)", std::to_string(shed)});
  table.add_row({"deadline exceeded", std::to_string(deadline_exceeded)});
  table.add_row({"parse errors", std::to_string(parse_errors)});
  table.add_row({"shed rate", util::fmt_double(shed_rate() * 100, 2) + " %"});
  table.add_row({"p50 latency", fmt_latency(latency.percentile_seconds(0.50))});
  table.add_row({"p95 latency", fmt_latency(latency.percentile_seconds(0.95))});
  table.add_row({"p99 latency", fmt_latency(latency.percentile_seconds(0.99))});
  table.add_row({"cache hits", std::to_string(cache.hits)});
  table.add_row({"cache misses", std::to_string(cache.misses)});
  table.add_row({"cache hit rate",
                 util::fmt_double(cache.hit_rate() * 100, 2) + " %"});
  table.add_row({"cache evictions", std::to_string(cache.evictions)});
  table.add_row({"cache invalidations", std::to_string(cache.invalidations)});
  table.add_row({"updates applied", std::to_string(updates_applied)});
  table.add_row({"snapshot version", std::to_string(snapshot_version)});
  table.print(os);
}

}  // namespace parowl::serve
