#include "parowl/serve/updater.hpp"

#include <algorithm>
#include <memory>

#include "parowl/util/timer.hpp"

namespace parowl::serve {
namespace {

void sort_unique(std::vector<rdf::TermId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

Updater::Updater(SnapshotRegistry& registry, ResultCache* cache,
                 const rdf::Dictionary& dict,
                 const ontology::Vocabulary& vocab, unsigned reason_threads,
                 reason::MaintainStrategy strategy)
    : registry_(registry),
      cache_(cache),
      dict_(dict),
      vocab_(vocab),
      reason_threads_(reason_threads),
      strategy_(strategy) {}

UpdateOutcome Updater::apply(std::span<const rdf::Triple> additions) {
  const std::scoped_lock lock(write_mutex_);
  UpdateOutcome outcome;
  util::Stopwatch total;

  const SnapshotPtr old_snap = registry_.current();

  auto next = std::make_shared<KbSnapshot>();
  {
    util::Stopwatch copy_watch;
    next->store = old_snap->store;  // copy-on-update: readers keep theirs
    outcome.copy_seconds = copy_watch.elapsed_seconds();
  }
  next->delta_begin = next->store.size();
  next->version = old_snap->version + 1;

  // Rewrite mode: the class map is extended on a private clone (RCU, like
  // the store) so readers expanding through the old snapshot never race.
  std::shared_ptr<reason::EqualityManager> eq_next;
  if (old_snap->equality != nullptr) {
    eq_next = std::make_shared<reason::EqualityManager>(*old_snap->equality);
  }

  outcome.result = reason::materialize_incremental(
      next->store, dict_, vocab_, additions, {}, reason_threads_,
      eq_next != nullptr ? reason::EqualityMode::kRewrite
                         : reason::EqualityMode::kNaive,
      eq_next.get());
  // A merge can change the fixpoint without growing the store (the new
  // sameAs fact is intercepted and existing triples are remapped in
  // place), so "unchanged" must also check the map.
  if (outcome.result.schema_changed ||
      (next->store.size() == next->delta_begin &&
       outcome.result.eq_merges == 0)) {
    // Rejected or a pure-duplicate batch: the fixpoint is unchanged, keep
    // the current snapshot (and every cache entry) as is.
    outcome.total_seconds = total.elapsed_seconds();
    return outcome;
  }
  if (outcome.result.eq_rebuilds > 0) {
    // A merge rebuilt (reordered) the store log: the survivor-prefix
    // contract is void, so the whole store is the delta.  The footprint
    // below then spans every stored predicate, which is exactly what makes
    // cached pre-merge answers unreachable.
    next->delta_begin = 0;
  }
  next->equality = std::move(eq_next);

  // The base grows by the genuinely new asserted triples; derived triples
  // already present stay derived.  Null base means "everything asserted" —
  // keep that convention by leaving it null (the new triples are in the
  // store log either way).
  if (old_snap->base != nullptr) {
    auto base = std::make_shared<std::vector<rdf::Triple>>(*old_snap->base);
    rdf::TripleSet base_set;
    for (const rdf::Triple& t : *base) {
      base_set.insert(t);
    }
    for (const rdf::Triple& t : additions) {
      if (base_set.insert(t)) {
        base->push_back(t);
      }
    }
    next->base = std::move(base);
  }

  // Footprint of the delta: every predicate among the new triples.
  const auto& log = next->store.triples();
  for (std::size_t i = next->delta_begin; i < log.size(); ++i) {
    outcome.delta_predicates.push_back(log[i].p);
  }
  sort_unique(outcome.delta_predicates);

  // Invalidate before publishing: after the swap no reader can find a
  // cached answer the delta made stale.
  if (cache_ != nullptr) {
    outcome.invalidated =
        cache_->on_update(outcome.delta_predicates, next->version);
  }
  outcome.version = next->version;
  registry_.publish(std::move(next));
  ++batches_;
  outcome.total_seconds = total.elapsed_seconds();
  return outcome;
}

UpdateOutcome Updater::apply(std::span<const rdf::Triple> additions,
                             std::span<const rdf::Triple> deletions) {
  if (deletions.empty()) {
    return apply(additions);
  }
  const std::scoped_lock lock(write_mutex_);
  UpdateOutcome outcome;
  util::Stopwatch total;

  const SnapshotPtr old_snap = registry_.current();

  auto next = std::make_shared<KbSnapshot>();
  std::vector<rdf::Triple> base;
  {
    util::Stopwatch copy_watch;
    next->store = old_snap->store;  // copy-on-update: readers keep theirs
    // No recorded base: conservatively treat every closure triple as
    // asserted (see KbSnapshot::base).
    base = old_snap->base != nullptr ? *old_snap->base
                                     : old_snap->store.triples();
    outcome.copy_seconds = copy_watch.elapsed_seconds();
  }
  next->version = old_snap->version + 1;

  reason::MaintainOptions mopts;
  mopts.strategy = strategy_;
  mopts.threads = reason_threads_;
  // Rewrite mode: hand the maintainer a private clone of the class map
  // (RCU).  It only ever *grows* the clone — batches that would shrink a
  // class come back equality_rejected and the clone is discarded.
  std::shared_ptr<reason::EqualityManager> eq_next;
  if (old_snap->equality != nullptr) {
    eq_next = std::make_shared<reason::EqualityManager>(*old_snap->equality);
    mopts.equality_mode = reason::EqualityMode::kRewrite;
    mopts.equality = eq_next.get();
  }
  const reason::Maintainer maintainer(dict_, vocab_, mopts);
  outcome.maintain = maintainer.apply(next->store, base, additions, deletions);

  // Mirror the headline numbers into the legacy stats block so existing
  // callers see one shape for both batch kinds.
  outcome.result.schema_changed = outcome.maintain.schema_changed;
  outcome.result.added = outcome.maintain.base_added;
  outcome.result.inferred = outcome.maintain.inferred;
  outcome.result.iterations = outcome.maintain.rederive_iterations;
  outcome.result.reason_seconds = outcome.maintain.rederive_seconds;

  const bool changed = outcome.maintain.base_added > 0 ||
                       outcome.maintain.base_deleted > 0 ||
                       outcome.maintain.removed > 0 ||
                       outcome.maintain.inferred > 0;
  if (outcome.maintain.schema_changed || outcome.maintain.equality_rejected ||
      !changed) {
    // Rejected (schema change / deletion touching the equality map), or an
    // all-no-op batch (deletes of absent triples plus duplicate adds): the
    // fixpoint is unchanged, keep the current snapshot and every cache
    // entry as is.
    outcome.total_seconds = total.elapsed_seconds();
    return outcome;
  }

  // first_new_index is already 0 when a merge rebuilt the store log, so the
  // footprint below covers every stored predicate in that case.
  next->delta_begin = outcome.maintain.first_new_index;
  next->equality = std::move(eq_next);
  next->base =
      std::make_shared<const std::vector<rdf::Triple>>(std::move(base));

  // Footprint of the delta: the new triples' predicates AND the removed
  // triples' predicates — a cached answer that contained a deleted (or
  // overdeleted-then-not-rederived) triple must be retired too.
  const auto& log = next->store.triples();
  for (std::size_t i = next->delta_begin; i < log.size(); ++i) {
    outcome.delta_predicates.push_back(log[i].p);
  }
  for (const rdf::Triple& t : outcome.maintain.removed_triples) {
    outcome.delta_predicates.push_back(t.p);
  }
  sort_unique(outcome.delta_predicates);

  if (cache_ != nullptr) {
    outcome.invalidated =
        cache_->on_update(outcome.delta_predicates, next->version);
  }
  outcome.version = next->version;
  registry_.publish(std::move(next));
  ++batches_;
  outcome.total_seconds = total.elapsed_seconds();
  return outcome;
}

std::uint64_t Updater::batches_applied() const {
  const std::scoped_lock lock(write_mutex_);
  return batches_;
}

}  // namespace parowl::serve
