#include "parowl/serve/updater.hpp"

#include <algorithm>

#include "parowl/util/timer.hpp"

namespace parowl::serve {

Updater::Updater(SnapshotRegistry& registry, ResultCache* cache,
                 const rdf::Dictionary& dict,
                 const ontology::Vocabulary& vocab, unsigned reason_threads)
    : registry_(registry),
      cache_(cache),
      dict_(dict),
      vocab_(vocab),
      reason_threads_(reason_threads) {}

UpdateOutcome Updater::apply(std::span<const rdf::Triple> additions) {
  const std::scoped_lock lock(write_mutex_);
  UpdateOutcome outcome;
  util::Stopwatch total;

  const SnapshotPtr old_snap = registry_.current();

  auto next = std::make_shared<KbSnapshot>();
  {
    util::Stopwatch copy_watch;
    next->store = old_snap->store;  // copy-on-update: readers keep theirs
    outcome.copy_seconds = copy_watch.elapsed_seconds();
  }
  next->delta_begin = next->store.size();
  next->version = old_snap->version + 1;

  outcome.result = reason::materialize_incremental(
      next->store, dict_, vocab_, additions, {}, reason_threads_);
  if (outcome.result.schema_changed ||
      next->store.size() == next->delta_begin) {
    // Rejected or a pure-duplicate batch: the fixpoint is unchanged, keep
    // the current snapshot (and every cache entry) as is.
    outcome.total_seconds = total.elapsed_seconds();
    return outcome;
  }

  // Footprint of the delta: every predicate among the new triples.
  const auto& log = next->store.triples();
  for (std::size_t i = next->delta_begin; i < log.size(); ++i) {
    outcome.delta_predicates.push_back(log[i].p);
  }
  std::sort(outcome.delta_predicates.begin(), outcome.delta_predicates.end());
  outcome.delta_predicates.erase(std::unique(outcome.delta_predicates.begin(),
                                             outcome.delta_predicates.end()),
                                 outcome.delta_predicates.end());

  // Invalidate before publishing: after the swap no reader can find a
  // cached answer the delta made stale.
  if (cache_ != nullptr) {
    outcome.invalidated =
        cache_->on_update(outcome.delta_predicates, next->version);
  }
  outcome.version = next->version;
  registry_.publish(std::move(next));
  ++batches_;
  outcome.total_seconds = total.elapsed_seconds();
  return outcome;
}

std::uint64_t Updater::batches_applied() const {
  const std::scoped_lock lock(write_mutex_);
  return batches_;
}

}  // namespace parowl::serve
