#pragma once

#include <memory>
#include <span>
#include <vector>

#include "parowl/partition/partitioner.hpp"

namespace parowl::partition {

/// Construct a streaming partitioner (kHdrf / kFennel / kNe — kMultilevel
/// is rejected; use make_partitioner for the dispatching factory).  The
/// streaming implementations keep O(|V| + k + window) state: a dense node
/// table (owner, partial degree, replica bitmask), per-partition load
/// counters, a k x k inter-partition edge matrix, and one re-windowing
/// buffer — never the edge set.  Replica sets are 64-bit masks, so
/// k * split_merge_factor is clamped to 64.
[[nodiscard]] std::unique_ptr<Partitioner> make_streaming_partitioner(
    const PartitionerOptions& options, const rdf::Dictionary& dict,
    std::uint32_t num_partitions, const ExcludedTerms* exclude = nullptr);

/// Partition an already-materialized CSR graph by replaying its adjacency
/// as a synthetic edge stream (each merged undirected edge once, in vertex
/// order).  Metrics are recomputed exactly against the graph.
[[nodiscard]] PartitionPlan streaming_csr_plan(
    const Graph& graph, int k, const PartitionerOptions& options);

/// The FSM-style split-merge post-pass, shared by every partitioner: given
/// a fine partitioning into |part_weights| parts (vertex replica bitmasks
/// over the fine parts plus per-part vertex weights), greedily merge pairs
/// down to `coarse_k` parts, each step picking the pair that saves the
/// most replicas while keeping merged weights under (1 + slack) x the
/// proportional share.  Returns the fine-part -> coarse-part remap.
[[nodiscard]] std::vector<std::uint32_t> split_merge_remap(
    std::span<const std::uint64_t> masks,
    std::span<const std::uint64_t> part_weights, int coarse_k, double slack);

}  // namespace parowl::partition
