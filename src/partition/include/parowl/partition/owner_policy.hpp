#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "parowl/partition/graph.hpp"
#include "parowl/partition/multilevel.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::partition {

/// Maps each resource node to the partition that owns it — the "owner list"
/// of the paper's generic data partitioning algorithm (Algorithm 1).
using OwnerTable = std::unordered_map<rdf::TermId, std::uint32_t>;

/// Strategy interface: given the instance triples, produce the owner table.
///
/// Implementations correspond to §III-A's three policies:
///  * GraphOwnerPolicy  — multilevel partitioning of the resource graph
///  * HashOwnerPolicy   — streaming hash of the node's lexical form
///  * DomainOwnerPolicy — locality key extracted from the IRI
class OwnerPolicy {
 public:
  virtual ~OwnerPolicy() = default;

  /// Compute owners for every resource in `instance_triples` across
  /// `num_partitions` partitions.  Terms in `exclude` (schema elements —
  /// classes/properties, which are replicated rather than partitioned) get
  /// no owner and induce no graph edges.
  [[nodiscard]] virtual OwnerTable assign(
      std::span<const rdf::Triple> instance_triples,
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const = 0;

  /// Short name used in benchmark tables ("Graph", "Hash", "Dom sp.").
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Graph partitioning policy (§III-A-1): build the RDF resource graph and
/// run the multilevel partitioner; the owner of a node is its partition.
class GraphOwnerPolicy final : public OwnerPolicy {
 public:
  explicit GraphOwnerPolicy(MultilevelOptions options = {})
      : options_(options) {}

  [[nodiscard]] OwnerTable assign(std::span<const rdf::Triple> instance_triples,
                                  const rdf::Dictionary& dict,
                                  std::uint32_t num_partitions,
                                  const ExcludedTerms* exclude = nullptr)
      const override;
  [[nodiscard]] std::string name() const override { return "Graph"; }

 private:
  MultilevelOptions options_;
};

/// Hash policy (§III-A-2): owner(node) = hash(lexical form) mod k.
/// Streaming — no global graph is materialized, and the owner table can be
/// recomputed anywhere from the hash function alone.
class HashOwnerPolicy final : public OwnerPolicy {
 public:
  explicit HashOwnerPolicy(std::uint64_t salt = 0) : salt_(salt) {}

  [[nodiscard]] OwnerTable assign(std::span<const rdf::Triple> instance_triples,
                                  const rdf::Dictionary& dict,
                                  std::uint32_t num_partitions,
                                  const ExcludedTerms* exclude = nullptr)
      const override;
  [[nodiscard]] std::string name() const override { return "Hash"; }

  /// The pure hash (also usable without a table).
  [[nodiscard]] std::uint32_t owner_of(std::string_view lexical,
                                       std::uint32_t num_partitions) const;

 private:
  std::uint64_t salt_;
};

/// Domain-specific policy (§III-A-3): a locality key is extracted from each
/// resource IRI (e.g. the university index in LUBM IRIs); all nodes with
/// the same key land in the same partition.  Keys are distributed over
/// partitions round-robin in first-seen order, which keeps similarly-sized
/// domains balanced.  Nodes without a key fall back to the hash policy.
class DomainOwnerPolicy final : public OwnerPolicy {
 public:
  /// Extracts a locality key from a lexical form; return std::nullopt-like
  /// kNoKey when the IRI carries no domain information.
  using KeyExtractor = std::function<std::int64_t(std::string_view)>;
  static constexpr std::int64_t kNoKey = -1;

  explicit DomainOwnerPolicy(KeyExtractor extractor, std::string label = "Dom sp.")
      : extractor_(std::move(extractor)), label_(std::move(label)) {}

  [[nodiscard]] OwnerTable assign(std::span<const rdf::Triple> instance_triples,
                                  const rdf::Dictionary& dict,
                                  std::uint32_t num_partitions,
                                  const ExcludedTerms* exclude = nullptr)
      const override;
  [[nodiscard]] std::string name() const override { return label_; }

 private:
  KeyExtractor extractor_;
  std::string label_;
};

/// Key extractor for LUBM/UOBM-style IRIs of the form
/// "http://www.UnivN.edu/...": returns N.  Also matches the department
/// sub-authority "http://www.DepartmentM.UnivN.edu/...".
[[nodiscard]] std::int64_t lubm_university_key(std::string_view iri);

}  // namespace parowl::partition
