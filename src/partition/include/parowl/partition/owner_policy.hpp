#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "parowl/partition/partitioner.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::partition {

/// Strategy interface: a factory of Partitioner instances, one per
/// partitioning run.  This is the policy layer of §III-A — callers that
/// stream (the ingest bootstrap) call create() and feed chunks themselves;
/// one-shot callers (Algorithm 1's partition_data) use the plan()/assign()
/// conveniences below.
///
/// Implementations correspond to §III-A's policies plus the streaming
/// suite:
///  * GraphOwnerPolicy     — multilevel partitioning of the resource graph
///  * HashOwnerPolicy      — streaming hash of the node's lexical form
///  * DomainOwnerPolicy    — locality key extracted from the IRI
///  * StreamingOwnerPolicy — HDRF / Fennel / NE (+ split-merge)
///  * FixedOwnerPolicy     — replay of a precomputed owner table
class OwnerPolicy {
 public:
  virtual ~OwnerPolicy() = default;

  /// Construct a fresh partitioner bound to (dict, num_partitions,
  /// exclude).  `dict`, `exclude`, and this policy must outlive it.  Terms
  /// in `exclude` (schema elements — classes/properties, which are
  /// replicated rather than partitioned) get no owner and induce no graph
  /// edges.
  [[nodiscard]] virtual std::unique_ptr<Partitioner> create(
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const = 0;

  /// Short name used in benchmark tables ("Graph", "Hash", "HDRF").
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-shot convenience: create(), ingest the whole span, finalize().
  /// Chunking never changes the result, so feeding everything at once is
  /// equivalent to any streaming decomposition.
  [[nodiscard]] PartitionPlan plan(
      std::span<const rdf::Triple> instance_triples,
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const;

  /// plan() reduced to its owner table.
  [[nodiscard]] OwnerTable assign(
      std::span<const rdf::Triple> instance_triples,
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const;
};

/// A Partitioner for pointwise policies (hash / domain / fixed): the owner
/// of a term is decided at first sight by a callback on (term, lexical),
/// independent of graph structure.  Streams with O(|V| + k^2) state and
/// accounts the same replica-mask metrics as the structural partitioners
/// when k <= 64 (beyond that only the load counters are kept).
class PointwisePartitioner final : public Partitioner {
 public:
  using OwnerFn = std::function<std::uint32_t(rdf::TermId, std::string_view)>;

  PointwisePartitioner(OwnerFn owner_of, std::string algorithm,
                       const rdf::Dictionary& dict,
                       std::uint32_t num_partitions,
                       const ExcludedTerms* exclude);

  void ingest(std::span<const rdf::Triple> chunk) override;
  [[nodiscard]] PartitionPlan finalize() override;
  [[nodiscard]] std::string name() const override { return algorithm_; }

 private:
  struct Node {
    std::uint32_t owner = 0;
    std::uint64_t mask = 0;
  };

  Node* touch(rdf::TermId term);

  OwnerFn owner_of_;
  std::string algorithm_;
  const rdf::Dictionary* dict_;
  const ExcludedTerms* exclude_;
  std::uint32_t k_;
  std::unordered_map<rdf::TermId, Node> nodes_;
  std::vector<std::uint64_t> loads_;
  std::vector<std::uint64_t> cut_matrix_;  // [lo * k + hi], k <= 64 only
  std::size_t triples_ingested_ = 0;
  std::size_t peak_state_ = 0;
  double ingest_seconds_ = 0.0;
};

/// Graph partitioning policy (§III-A-1): build the RDF resource graph and
/// run the multilevel partitioner; the owner of a node is its partition.
class GraphOwnerPolicy final : public OwnerPolicy {
 public:
  explicit GraphOwnerPolicy(PartitionerOptions options = {})
      : options_(options) {
    options_.kind = PartitionerKind::kMultilevel;
  }

  [[nodiscard]] std::unique_ptr<Partitioner> create(
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "Graph"; }

 private:
  PartitionerOptions options_;
};

/// Streaming policy: HDRF / Fennel / NE with the optional split-merge
/// post-pass, per the options' kind.  The partitioners it creates hold
/// O(|V| + k) state and never materialize the resource graph.
class StreamingOwnerPolicy final : public OwnerPolicy {
 public:
  explicit StreamingOwnerPolicy(PartitionerOptions options,
                                std::string label = "");

  [[nodiscard]] std::unique_ptr<Partitioner> create(
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const override;
  [[nodiscard]] std::string name() const override { return label_; }

 private:
  PartitionerOptions options_;
  std::string label_;
};

/// Hash policy (§III-A-2): owner(node) = hash(lexical form) mod k.
/// Streaming — no global graph is materialized, and the owner table can be
/// recomputed anywhere from the hash function alone.
class HashOwnerPolicy final : public OwnerPolicy {
 public:
  explicit HashOwnerPolicy(std::uint64_t salt = 0) : salt_(salt) {}

  [[nodiscard]] std::unique_ptr<Partitioner> create(
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "Hash"; }

  /// The pure hash (also usable without a table).
  [[nodiscard]] std::uint32_t owner_of(std::string_view lexical,
                                       std::uint32_t num_partitions) const;

 private:
  std::uint64_t salt_;
};

/// Domain-specific policy (§III-A-3): a locality key is extracted from each
/// resource IRI (e.g. the university index in LUBM IRIs); all nodes with
/// the same key land in the same partition.  Keys are distributed over
/// partitions round-robin in first-seen order, which keeps similarly-sized
/// domains balanced.  Nodes without a key fall back to the hash policy.
class DomainOwnerPolicy final : public OwnerPolicy {
 public:
  /// Extracts a locality key from a lexical form; return std::nullopt-like
  /// kNoKey when the IRI carries no domain information.
  using KeyExtractor = std::function<std::int64_t(std::string_view)>;
  static constexpr std::int64_t kNoKey = -1;

  explicit DomainOwnerPolicy(KeyExtractor extractor, std::string label = "Dom sp.")
      : extractor_(std::move(extractor)), label_(std::move(label)) {}

  [[nodiscard]] std::unique_ptr<Partitioner> create(
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const override;
  [[nodiscard]] std::string name() const override { return label_; }

 private:
  KeyExtractor extractor_;
  std::string label_;
};

/// Key extractor for LUBM/UOBM-style IRIs of the form
/// "http://www.UnivN.edu/...": returns N.  Also matches the department
/// sub-authority "http://www.DepartmentM.UnivN.edu/...".
[[nodiscard]] std::int64_t lubm_university_key(std::string_view iri);

}  // namespace parowl::partition
