#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "parowl/partition/graph.hpp"
#include "parowl/partition/metrics.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::partition {

/// Maps each resource node to the partition that owns it — the "owner list"
/// of the paper's generic data partitioning algorithm (Algorithm 1).
using OwnerTable = std::unordered_map<rdf::TermId, std::uint32_t>;

/// The partitioning algorithms behind the unified Partitioner interface.
///
///  * kMultilevel — Metis-family multilevel recursive bisection.  Best
///    quality; needs the whole resource graph in memory.
///  * kHdrf — HDRF (highest-degree replicated first) streaming heuristic:
///    vertices are placed at first sight, scored by degree-weighted replica
///    affinity, so high-degree hubs absorb the replication.
///  * kFennel — Fennel streaming heuristic: a vertex joins the partition
///    holding most of its recently-seen neighbors minus a load penalty.
///  * kNe — neighbor expansion: BFS regions grown inside each streaming
///    window are placed as a unit on the least-loaded affine partition.
enum class PartitionerKind : std::uint8_t {
  kMultilevel,
  kHdrf,
  kFennel,
  kNe,
};

/// One options struct for every partitioner — the CLI's `--partitioner`,
/// `--balance-slack`, and `--split-merge-factor` flags map here, shared by
/// `run`, `serve-dist`, and the partition benches.
struct PartitionerOptions {
  PartitionerKind kind = PartitionerKind::kMultilevel;

  /// RNG / tie-break seed (determinism knob, recorded in the plan).
  std::uint64_t seed = 0x5eed;

  /// Allowed imbalance: a partition may carry up to (1 + slack) x its
  /// proportional share of vertex weight.  All partitioners honor it; the
  /// split-merge post-pass enforces it on the merged parts.
  double balance_slack = 0.05;

  /// Split-merge factor m: when > 1, partition into k*m fine parts first,
  /// then greedily merge pairs down to k, maximizing the replication saved
  /// per merge (the FSM two-phase post-pass).  1 disables the pass.
  /// Streaming partitioners clamp k*m to 64 (replica sets are bitmasks).
  unsigned split_merge_factor = 1;

  // --- streaming knobs (HDRF / Fennel / NE) ---

  /// Internal re-windowing size, in edges.  Incoming chunks of any shape
  /// are re-cut into fixed windows so the assignment is independent of
  /// ingest chunking (and hence of `--load-threads`).
  std::size_t window = 4096;

  /// HDRF balance weight λ: 0 = pure replication greed, larger values push
  /// toward equal loads.
  double hdrf_lambda = 1.0;

  /// Fennel load-penalty weight γ.
  double fennel_gamma = 1.5;

  /// When set, triples with this predicate contribute only their subject as
  /// a vertex (the object is a class IRI — a giant hub if kept).  Used by
  /// the streaming bootstrap, where no schema exclusion set exists yet.
  rdf::TermId type_predicate = rdf::kAnyTerm;

  // --- multilevel knobs ---

  /// Run Fiduccia–Mattheyses boundary refinement after each uncoarsening
  /// step.  Disabling it is the "no refinement" ablation.
  bool refine = true;

  /// Stop coarsening once the graph has at most this many vertices.
  std::size_t coarsen_to = 96;

  /// FM passes per level.
  int refine_passes = 6;
};

/// The outcome of a partitioning run: the assignment itself plus the
/// metrics and provenance needed to audit it.
struct PartitionPlan {
  /// Triple streams: term -> owning partition (Algorithm 1's owner list).
  OwnerTable owners;

  /// CSR graphs: vertex -> partition, parallel to the input vertices.
  /// Empty when the plan was built from a triple stream (and vice versa).
  std::vector<std::uint32_t> assignment;

  /// Plan-level quality metrics (edge cut, balance, replication factor).
  PartitionMetrics metrics;

  // --- provenance ---

  /// Algorithm that produced the plan, e.g. "hdrf", "fennel+sm4",
  /// "multilevel".
  std::string algorithm;

  std::uint32_t partitions = 0;
  std::uint64_t seed = 0;

  /// Triples (or CSR edges) consumed by ingest().
  std::size_t triples_ingested = 0;

  /// Peak number of state entries held while partitioning — O(|V| + k +
  /// window) for the streaming partitioners, O(|V| + |E|) for multilevel.
  /// The streaming-memory acceptance tests pin this.
  std::size_t peak_state_entries = 0;

  /// Wall time of the whole partitioning step (the paper's "Part. Time").
  double partition_seconds = 0.0;
};

/// The unified partitioner interface: feed triples chunk-by-chunk as they
/// come out of the ingest pipeline, then finalize into a PartitionPlan.
///
/// Chunk boundaries never affect the result: implementations re-window the
/// stream internally, so any decomposition of the same triple sequence —
/// one call, per-parser-chunk calls, the whole store at once — produces an
/// identical plan.  Implementations are single-use: ingest() after
/// finalize() is undefined.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Consume the next chunk of instance triples (in stream order).
  virtual void ingest(std::span<const rdf::Triple> chunk) = 0;

  /// Finish: assign any pending vertices, run the split-merge post-pass if
  /// configured, and return the plan.
  [[nodiscard]] virtual PartitionPlan finalize() = 0;

  /// Short name used in benchmark tables ("HDRF", "Fennel", "Multilevel").
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Construct a partitioner bound to (dict, k, exclude).  `dict` and
/// `exclude` must outlive the partitioner; terms in `exclude` (schema
/// elements — replicated, not partitioned) get no owner and induce no
/// edges.
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(
    const PartitionerOptions& options, const rdf::Dictionary& dict,
    std::uint32_t num_partitions, const ExcludedTerms* exclude = nullptr);

/// Partition an already-materialized CSR graph with the selected algorithm
/// (streaming kinds replay the adjacency as a synthetic edge stream).  The
/// plan's `assignment` maps vertex -> partition; `owners` is empty.  This
/// is the entry point for non-RDF graphs (the rule-dependency graph, the
/// rebalancer's cost-weighted resource graph, tests and benches).
[[nodiscard]] PartitionPlan partition_csr_graph(
    const Graph& graph, int k, const PartitionerOptions& options = {});

/// CLI/bench helpers: parse "multilevel" / "hdrf" / "fennel" / "ne" (and
/// the legacy alias "graph" for multilevel); format the kind back.
[[nodiscard]] std::optional<PartitionerKind> partitioner_kind_from(
    std::string_view name);
[[nodiscard]] std::string_view to_string(PartitionerKind kind);

}  // namespace parowl::partition
