#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::partition {

/// Undirected weighted graph in CSR form — the input to the multilevel
/// partitioner.  Vertices carry weights (used during coarsening, where a
/// coarse vertex stands for several fine ones); edges carry weights (the
/// number of merged parallel edges, or rule-dependency volumes).
struct Graph {
  std::vector<std::size_t> xadj;       // size n+1; adjacency offsets
  std::vector<std::uint32_t> adjncy;   // neighbor vertex ids
  std::vector<std::uint64_t> adjwgt;   // edge weights, parallel to adjncy
  std::vector<std::uint64_t> vwgt;     // vertex weights, size n
  std::uint64_t total_vwgt = 0;

  [[nodiscard]] std::size_t num_vertices() const {
    return vwgt.size();
  }
  [[nodiscard]] std::size_t num_edges() const {
    return adjncy.size() / 2;  // each undirected edge stored twice
  }
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t v) const {
    return {adjncy.data() + xadj[v], xadj[v + 1] - xadj[v]};
  }
};

/// A weighted edge used while assembling a graph.
struct WeightedEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t weight = 1;
};

/// Build a CSR graph over `num_vertices` vertices from an edge list.
/// Self-loops are dropped; parallel edges are merged by summing weights.
/// Vertex weights default to 1 unless `vertex_weights` is non-empty.
[[nodiscard]] Graph build_graph(std::size_t num_vertices,
                                std::span<const WeightedEdge> edges,
                                std::span<const std::uint64_t> vertex_weights = {});

/// The RDF resource graph of the paper's graph-partitioning policy: one
/// vertex per resource (IRI/blank node) appearing in the given instance
/// triples, one edge per triple whose object is a resource, all vertex
/// weights 1.  `node_of` maps TermId -> dense vertex id; `node_term` is the
/// inverse.
struct ResourceGraph {
  Graph graph;
  std::unordered_map<rdf::TermId, std::uint32_t> node_of;
  std::vector<rdf::TermId> node_term;
};

/// Terms that must not become graph vertices (schema elements: classes and
/// properties).  rdf:type objects are class IRIs — left in, they become
/// giant hubs connecting every entity of a class and wreck both edge-cut
/// and the locality the paper's Algorithm 1 relies on, so the schema terms
/// extracted from the ontology are excluded here (they are replicated, not
/// partitioned).
using ExcludedTerms = std::unordered_set<rdf::TermId>;

[[nodiscard]] ResourceGraph build_resource_graph(
    std::span<const rdf::Triple> instance_triples, const rdf::Dictionary& dict,
    const ExcludedTerms* exclude = nullptr);

}  // namespace parowl::partition
