#pragma once

#include <cstdint>
#include <vector>

#include "parowl/partition/graph.hpp"

namespace parowl::partition {

/// Options for the multilevel partitioner.
struct MultilevelOptions {
  /// RNG seed for the matching visit order (determinism knob).
  std::uint64_t seed = 0x5eed;

  /// Run Fiduccia–Mattheyses boundary refinement after each uncoarsening
  /// step.  Disabling it is the "no refinement" ablation.
  bool refine = true;

  /// Allowed imbalance: a side may carry up to (1 + tolerance) x its
  /// proportional share of vertex weight.
  double balance_tolerance = 0.03;

  /// Stop coarsening once the graph has at most this many vertices.
  std::size_t coarsen_to = 96;

  /// FM passes per level.
  int refine_passes = 6;
};

/// Result of a k-way partitioning.
struct PartitionResult {
  std::vector<std::uint32_t> assignment;  // vertex -> partition in [0, k)
  std::uint64_t edge_cut = 0;             // total weight of cut edges
};

/// Partition `graph` into `k` parts using multilevel recursive bisection:
/// heavy-edge-matching coarsening, greedy BFS-grown initial bisection, and
/// FM refinement projected back up the hierarchy.  This is the same
/// algorithm family as Metis, which the paper uses for its graph
/// partitioning policy.
[[nodiscard]] PartitionResult partition_graph(const Graph& graph, int k,
                                              const MultilevelOptions& options = {});

/// Total weight of edges whose endpoints lie in different partitions.
[[nodiscard]] std::uint64_t compute_edge_cut(
    const Graph& graph, const std::vector<std::uint32_t>& assignment);

/// Vertex-weight total per partition (balance diagnostic).
[[nodiscard]] std::vector<std::uint64_t> partition_weights(
    const Graph& graph, const std::vector<std::uint32_t>& assignment, int k);

}  // namespace parowl::partition
