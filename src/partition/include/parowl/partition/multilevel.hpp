#pragma once

#include <vector>

#include "parowl/partition/partitioner.hpp"

namespace parowl::partition {

/// Multilevel recursive-bisection implementation of the Partitioner
/// interface: heavy-edge-matching coarsening, greedy BFS-grown initial
/// bisection, and FM refinement projected back up the hierarchy — the same
/// algorithm family as Metis, which the paper uses for its graph
/// partitioning policy.
///
/// Unlike the streaming partitioners this one needs the whole graph:
/// ingest() buffers the triples and finalize() builds the resource graph,
/// so state is O(|V| + |E|).  It is the quality baseline the streaming
/// heuristics are scored against.
class MultilevelPartitioner final : public Partitioner {
 public:
  MultilevelPartitioner(const PartitionerOptions& options,
                        const rdf::Dictionary& dict,
                        std::uint32_t num_partitions,
                        const ExcludedTerms* exclude = nullptr)
      : options_(options),
        dict_(&dict),
        exclude_(exclude),
        k_(num_partitions) {}

  void ingest(std::span<const rdf::Triple> chunk) override;
  [[nodiscard]] PartitionPlan finalize() override;
  [[nodiscard]] std::string name() const override { return "Multilevel"; }

 private:
  PartitionerOptions options_;
  const rdf::Dictionary* dict_;
  const ExcludedTerms* exclude_;
  std::uint32_t k_;
  std::vector<rdf::Triple> buffer_;
};

/// CSR entry point for the multilevel kind (partition_csr_graph dispatches
/// here): recursive bisection at k * split_merge_factor, then the shared
/// split-merge post-pass when configured.
[[nodiscard]] PartitionPlan multilevel_csr_plan(
    const Graph& graph, int k, const PartitionerOptions& options = {});

}  // namespace parowl::partition
