#pragma once

#include <vector>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/partition/owner_policy.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::partition {

/// Output of the generic data partitioning algorithm (Algorithm 1).
struct DataPartitioning {
  /// parts[p] holds the instance triples assigned to partition p.  A triple
  /// lands in the partition owning its subject AND the partition owning its
  /// object, so a triple may appear in up to two parts (the paper's
  /// replication bound).
  std::vector<std::vector<rdf::Triple>> parts;

  /// Schema triples, replicated to every partition by the runtime.
  std::vector<rdf::Triple> schema;

  /// node -> owning partition; the partition table Algorithm 3 routes
  /// inferred tuples with.
  OwnerTable owners;

  /// Wall time of the whole partitioning step (the paper's "Part. Time").
  double partition_seconds = 0.0;

  /// Provenance from the owner plan: the algorithm that produced the owner
  /// table and the plan-level metrics (replication factor, edge cut, load
  /// balance) the partitioner reported about itself.  `owners` above is the
  /// plan's table, moved here.
  std::string algorithm;
  PartitionMetrics plan_metrics;
};

/// Run Algorithm 1 on `store`:
///   1. strip schema triples,
///   2. build the owner list with `policy`,
///   3. assign each instance triple to owner(subject) and owner(object).
[[nodiscard]] DataPartitioning partition_data(const rdf::TripleStore& store,
                                              const rdf::Dictionary& dict,
                                              const ontology::Vocabulary& vocab,
                                              const OwnerPolicy& policy,
                                              std::uint32_t num_partitions);

/// Append the partitions that must hold a *closure* triple to `out` (not
/// cleared; destinations are distinct): the owner of the subject plus the
/// owner of the object when each is owned.  A triple with no owned endpoint
/// — schema axioms, inferred schema facts, literal-only statements — is
/// broadcast to all `num_partitions` partitions, the replication rule that
/// keeps every shard self-contained for pattern matching.  This is the
/// placement rule behind both Algorithm 1's parts and the serving tier's
/// shards (dist::ShardCatalog), kept here so the two planes cannot drift.
void append_shard_destinations(const OwnerTable& owners, const rdf::Triple& t,
                               std::uint32_t num_partitions,
                               std::vector<std::uint32_t>& out);

/// The partitions a query *pattern* (kAnyTerm = wildcard) can match triples
/// on, under the append_shard_destinations placement rule: a pattern with
/// an owned constant subject or object is answerable entirely by that
/// endpoint's partition (every matching triple is replicated there); any
/// other pattern must consult all partitions.  Returns the sorted distinct
/// partition list.
[[nodiscard]] std::vector<std::uint32_t> pattern_footprint(
    const OwnerTable& owners, const rdf::Triple& pattern,
    std::uint32_t num_partitions);

}  // namespace parowl::partition
