#pragma once

#include <vector>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/partition/owner_policy.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::partition {

/// Output of the generic data partitioning algorithm (Algorithm 1).
struct DataPartitioning {
  /// parts[p] holds the instance triples assigned to partition p.  A triple
  /// lands in the partition owning its subject AND the partition owning its
  /// object, so a triple may appear in up to two parts (the paper's
  /// replication bound).
  std::vector<std::vector<rdf::Triple>> parts;

  /// Schema triples, replicated to every partition by the runtime.
  std::vector<rdf::Triple> schema;

  /// node -> owning partition; the partition table Algorithm 3 routes
  /// inferred tuples with.
  OwnerTable owners;

  /// Wall time of the whole partitioning step (the paper's "Part. Time").
  double partition_seconds = 0.0;
};

/// Run Algorithm 1 on `store`:
///   1. strip schema triples,
///   2. build the owner list with `policy`,
///   3. assign each instance triple to owner(subject) and owner(object).
[[nodiscard]] DataPartitioning partition_data(const rdf::TripleStore& store,
                                              const rdf::Dictionary& dict,
                                              const ontology::Vocabulary& vocab,
                                              const OwnerPolicy& policy,
                                              std::uint32_t num_partitions);

}  // namespace parowl::partition
