#pragma once

#include <span>
#include <vector>

#include "parowl/partition/data_partition.hpp"

namespace parowl::partition {

/// The partition-quality metrics of §III (Table I).
struct PartitionMetrics {
  /// bal: standard deviation of the number of (distinct) nodes per
  /// partition.  Computation time is proportional to node count, so this
  /// is the load-balance diagnostic.
  double bal = 0.0;

  /// IR: the replication excess — sum over partitions of distinct nodes
  /// present, divided by the total number of distinct input-graph nodes,
  /// minus 1.  0 means no node is replicated; Table I of the paper reports
  /// this quantity (graph policy ~0.07-0.19, hash ~0.7-2.1).
  double input_replication = 0.0;

  std::vector<std::size_t> nodes_per_partition;
  std::size_t total_nodes = 0;
};

/// Compute bal and IR for a data partitioning.
[[nodiscard]] PartitionMetrics compute_partition_metrics(
    const DataPartitioning& partitioning, const rdf::Dictionary& dict);

/// OR: the output-duplication excess — sum over processors of result-tuple
/// counts divided by the size of the unioned output, minus 1.  0 means
/// every inference was derived exactly once (the paper's efficiency ideal).
[[nodiscard]] double output_replication(
    std::span<const std::size_t> per_partition_results,
    std::size_t union_size);

}  // namespace parowl::partition
