#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parowl/partition/graph.hpp"

namespace parowl::partition {

struct DataPartitioning;

/// The partition-quality metrics of §III (Table I), extended with the
/// graph-level diagnostics (edge cut, vertex-weight balance, replication
/// factor) so there is exactly one metrics struct across the partitioning
/// stack — partitioners fill the graph-level fields into their plans, and
/// compute_partition_metrics fills the data-level fields from a finished
/// DataPartitioning.
struct PartitionMetrics {
  /// bal: standard deviation of the number of (distinct) nodes per
  /// partition.  Computation time is proportional to node count, so this
  /// is the load-balance diagnostic.
  double bal = 0.0;

  /// IR: the replication excess — sum over partitions of distinct nodes
  /// present, divided by the total number of distinct input-graph nodes,
  /// minus 1.  0 means no node is replicated; Table I of the paper reports
  /// this quantity (graph policy ~0.07-0.19, hash ~0.7-2.1).
  double input_replication = 0.0;

  std::vector<std::size_t> nodes_per_partition;
  std::size_t total_nodes = 0;

  /// RF: mean number of partitions a node appears on under the placement
  /// rule (owner of subject + owner of object); equals IR + 1.  0 when not
  /// computed.
  double replication_factor = 0.0;

  /// Total weight of edges whose endpoints lie in different partitions.
  std::uint64_t edge_cut = 0;

  /// Vertex-weight total per partition (balance diagnostic; for resource
  /// graphs all weights are 1, so this is the owned-node count).
  std::vector<std::uint64_t> partition_weights;
};

/// Compute bal and IR for a data partitioning (data-level fields only).
[[nodiscard]] PartitionMetrics compute_partition_metrics(
    const DataPartitioning& partitioning, const rdf::Dictionary& dict);

/// Score a vertex -> partition assignment against its graph: edge cut,
/// per-partition vertex weights, and the placement replication metrics
/// (a vertex is replicated to every partition owning one of its
/// neighbors).  This replaces the old free-standing compute_edge_cut /
/// partition_weights helpers.
[[nodiscard]] PartitionMetrics compute_graph_metrics(
    const Graph& graph, std::span<const std::uint32_t> assignment, int k);

/// Build plan-level metrics from per-vertex replica bitmasks (bit p set =
/// the vertex appears on partition p under the placement rule) plus the
/// per-partition vertex-weight loads and the already-accumulated edge cut.
/// This is how the streaming partitioners score themselves without ever
/// holding the edge set.  Requires |part_weights| <= 64.
[[nodiscard]] PartitionMetrics metrics_from_replica_masks(
    std::span<const std::uint64_t> masks,
    std::span<const std::uint64_t> part_weights, std::uint64_t edge_cut);

/// OR: the output-duplication excess — sum over processors of result-tuple
/// counts divided by the size of the unioned output, minus 1.  0 means
/// every inference was derived exactly once (the paper's efficiency ideal).
[[nodiscard]] double output_replication(
    std::span<const std::size_t> per_partition_results,
    std::size_t union_size);

}  // namespace parowl::partition
