#pragma once

#include <span>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/partition/owner_policy.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::partition {

/// An owner policy that replays a precomputed owner table.  Used to feed a
/// streamed or rebalanced (or externally supplied) partitioning back into
/// the parallel pipeline; terms absent from the table fall back to a
/// stable hash.  This is how a PartitionPlan built during ingest drives
/// Algorithm 1 without re-partitioning.
class FixedOwnerPolicy final : public OwnerPolicy {
 public:
  explicit FixedOwnerPolicy(OwnerTable owners, std::string label = "Fixed")
      : owners_(std::move(owners)), label_(std::move(label)) {}

  [[nodiscard]] std::unique_ptr<Partitioner> create(
      const rdf::Dictionary& dict, std::uint32_t num_partitions,
      const ExcludedTerms* exclude = nullptr) const override;
  [[nodiscard]] std::string name() const override { return label_; }

 private:
  OwnerTable owners_;
  std::string label_;
};

/// Predictive re-partitioning — the dynamic load-balancing idea of the
/// paper's related work ([20]) and conclusions: after a run, per-partition
/// reasoning costs are known; attribute each node a weight proportional to
/// its old partition's observed cost-per-node and re-run the partitioner
/// (any kind — the options select it) so the *predicted* cost (not the
/// node count) is balanced.
///
/// `previous` maps nodes to their old partitions; `measured_cost[p]` is the
/// observed reasoning cost of partition p (any consistent unit).  Returns
/// the new owner table.
[[nodiscard]] OwnerTable rebalance_data_partition(
    const rdf::TripleStore& store, const rdf::Dictionary& dict,
    const ontology::Vocabulary& vocab, const OwnerTable& previous,
    std::span<const double> measured_cost, std::uint32_t num_partitions,
    const PartitionerOptions& options = {});

}  // namespace parowl::partition
