#pragma once

#include <vector>

#include "parowl/partition/partitioner.hpp"
#include "parowl/rules/dependency_graph.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::partition {

/// Output of the rule-base partitioning algorithm (Algorithm 2).
struct RulePartitioning {
  /// parts[p] is the rule subset executed by partition p.
  std::vector<rules::RuleSet> parts;

  /// rule index -> partition (parallel to the input rule set).
  std::vector<std::uint32_t> assignment;

  /// Weight of dependency edges crossing partitions — each crossing means
  /// a producing rule's tuples must be shipped to another processor.
  std::uint64_t edge_cut = 0;

  double partition_seconds = 0.0;
};

/// Options for rule partitioning.
struct RulePartitionOptions {
  /// Weigh dependency edges by predicate statistics from a sample data-set
  /// (paper §III-B); the caller passes the store to build_dependency_graph.
  /// The partitioner options pick the algorithm (multilevel by default).
  PartitionerOptions partitioner;
};

/// Run Algorithm 2: build/partition the rule-dependency graph and split the
/// rule set.  `graph` must come from build_dependency_graph over `rules`.
[[nodiscard]] RulePartitioning partition_rules(
    const rules::RuleSet& rules, const rules::DependencyGraph& graph,
    std::uint32_t num_partitions, const RulePartitionOptions& options = {});

}  // namespace parowl::partition
