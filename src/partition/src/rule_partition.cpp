#include "parowl/partition/rule_partition.hpp"

#include "parowl/util/timer.hpp"

namespace parowl::partition {

RulePartitioning partition_rules(const rules::RuleSet& rules,
                                 const rules::DependencyGraph& graph,
                                 std::uint32_t num_partitions,
                                 const RulePartitionOptions& options) {
  util::Stopwatch watch;
  RulePartitioning out;
  out.parts.resize(num_partitions);

  // Convert the dependency graph's undirected adjacency into the CSR form
  // the multilevel partitioner takes.
  const auto adjacency = graph.undirected_adjacency();
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 0; v < adjacency.size(); ++v) {
    for (const auto& [u, w] : adjacency[v]) {
      if (u > v) {
        edges.push_back(WeightedEdge{static_cast<std::uint32_t>(v),
                                     static_cast<std::uint32_t>(u), w});
      }
    }
  }
  const Graph g = build_graph(graph.num_rules, edges);
  const PartitionPlan plan = partition_csr_graph(
      g, static_cast<int>(num_partitions), options.partitioner);

  out.assignment = plan.assignment;
  out.edge_cut = plan.metrics.edge_cut;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out.parts[out.assignment[i]].add(rules[i]);
  }
  out.partition_seconds = watch.elapsed_seconds();
  return out;
}

}  // namespace parowl::partition
