#include "parowl/partition/rebalance.hpp"

#include <algorithm>
#include <cmath>

#include "parowl/ontology/ontology.hpp"
#include "parowl/util/strings.hpp"

namespace parowl::partition {

std::unique_ptr<Partitioner> FixedOwnerPolicy::create(
    const rdf::Dictionary& dict, std::uint32_t num_partitions,
    const ExcludedTerms* exclude) const {
  const OwnerTable* owners = &owners_;  // the policy outlives the partitioner
  return std::make_unique<PointwisePartitioner>(
      [owners, num_partitions](rdf::TermId term,
                               std::string_view lexical) -> std::uint32_t {
        if (const auto it = owners->find(term); it != owners->end()) {
          return std::min(it->second, num_partitions - 1);
        }
        return static_cast<std::uint32_t>(
            util::mix64(util::fnv1a64(lexical)) % num_partitions);
      },
      "fixed", dict, num_partitions, exclude);
}

OwnerTable rebalance_data_partition(const rdf::TripleStore& store,
                                    const rdf::Dictionary& dict,
                                    const ontology::Vocabulary& vocab,
                                    const OwnerTable& previous,
                                    std::span<const double> measured_cost,
                                    std::uint32_t num_partitions,
                                    const PartitionerOptions& options) {
  const ontology::SchemaSplit split = ontology::split_schema(store, vocab);
  const ontology::Ontology onto = ontology::extract_ontology(store, vocab);
  const ResourceGraph rg =
      build_resource_graph(split.instance, dict, &onto.schema_terms);

  // Observed cost-per-node for each old partition; unknown nodes get the
  // mean.  Vertex weights must be integers for the partitioner: scale so
  // the cheapest partition's nodes weigh ~16.
  std::vector<std::size_t> node_count(measured_cost.size(), 0);
  for (const auto& [term, part] : previous) {
    if (part < node_count.size()) {
      ++node_count[part];
    }
  }
  std::vector<double> per_node(measured_cost.size(), 0.0);
  double min_positive = 0.0;
  double mean = 0.0;
  std::size_t mean_n = 0;
  for (std::size_t p = 0; p < measured_cost.size(); ++p) {
    if (node_count[p] > 0 && measured_cost[p] > 0.0) {
      per_node[p] = measured_cost[p] / static_cast<double>(node_count[p]);
      mean += per_node[p];
      ++mean_n;
      if (min_positive == 0.0 || per_node[p] < min_positive) {
        min_positive = per_node[p];
      }
    }
  }
  mean = mean_n > 0 ? mean / static_cast<double>(mean_n) : 1.0;
  if (min_positive == 0.0) {
    min_positive = mean > 0.0 ? mean : 1.0;
  }

  std::vector<std::uint64_t> vwgt(rg.graph.num_vertices(), 1);
  for (std::uint32_t v = 0; v < rg.node_term.size(); ++v) {
    double cost = mean;
    if (const auto it = previous.find(rg.node_term[v]);
        it != previous.end() && it->second < per_node.size() &&
        per_node[it->second] > 0.0) {
      cost = per_node[it->second];
    }
    vwgt[v] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(16.0 * cost / min_positive)));
  }

  // Re-partition with the cost weights (reuse the CSR, swap weights) via
  // the unified Partitioner API — the options pick the algorithm.
  Graph weighted = rg.graph;
  weighted.vwgt = std::move(vwgt);
  weighted.total_vwgt = 0;
  for (const auto w : weighted.vwgt) {
    weighted.total_vwgt += w;
  }
  const PartitionPlan plan = partition_csr_graph(
      weighted, static_cast<int>(num_partitions), options);

  OwnerTable owners;
  owners.reserve(rg.node_term.size());
  for (std::uint32_t v = 0; v < rg.node_term.size(); ++v) {
    owners.emplace(rg.node_term[v], plan.assignment[v]);
  }
  return owners;
}

}  // namespace parowl::partition
