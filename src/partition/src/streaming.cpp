#include "parowl/partition/streaming.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "parowl/util/timer.hpp"

namespace parowl::partition {
namespace {

constexpr std::uint32_t kUnassigned = 0xffffffffu;

/// Clamp the split-merge factor so k * m fits the 64-bit replica masks.
unsigned effective_split_merge(const PartitionerOptions& options,
                               std::uint32_t k) {
  unsigned m = std::max(1u, options.split_merge_factor);
  while (m > 1 && static_cast<std::uint64_t>(k) * m > 64) {
    --m;
  }
  return m;
}

std::string kind_label(const PartitionerOptions& options, unsigned m) {
  std::string label{to_string(options.kind)};
  if (m > 1) {
    label += "+sm" + std::to_string(m);
  }
  return label;
}

/// One engine for all three streaming heuristics; they differ only in how
/// a window's unassigned vertices pick partitions.  All iteration is over
/// first-seen dense ids or partition indices, never hash-map order, so the
/// result is a pure function of the triple sequence and the options.
class StreamingImpl final : public Partitioner {
 public:
  StreamingImpl(const PartitionerOptions& options, const rdf::Dictionary* dict,
                std::uint32_t num_partitions, const ExcludedTerms* exclude)
      : options_(options),
        dict_(dict),
        exclude_(exclude),
        k_final_(num_partitions) {
    if (num_partitions == 0) {
      throw std::invalid_argument("streaming partitioner: k must be >= 1");
    }
    if (num_partitions > 64) {
      throw std::invalid_argument(
          "streaming partitioners support at most 64 partitions "
          "(replica sets are 64-bit masks)");
    }
    merge_factor_ = effective_split_merge(options, num_partitions);
    k_fine_ = num_partitions * merge_factor_;
    loads_.assign(k_fine_, 0);
    cut_matrix_.assign(static_cast<std::size_t>(k_fine_) * k_fine_, 0);
    window_cap_ = std::max<std::size_t>(64, options.window);
    window_.reserve(window_cap_);
  }

  void ingest(std::span<const rdf::Triple> chunk) override {
    for (const rdf::Triple& t : chunk) {
      ++triples_ingested_;
      if (excluded(t.s)) {
        continue;
      }
      if (options_.type_predicate != rdf::kAnyTerm &&
          t.p == options_.type_predicate) {
        push(t.s, t.s);  // the object is a class IRI, not a vertex
        continue;
      }
      if (t.o != t.s && dict_ != nullptr && dict_->is_resource(t.o) &&
          !excluded(t.o)) {
        push(t.s, t.o);
      } else {
        push(t.s, t.s);
      }
    }
  }

  PartitionPlan finalize() override {
    process_window();
    util::Stopwatch watch;
    if (k_fine_ > k_final_) {
      merge_to_final();
    }
    PartitionPlan plan;
    plan.partitions = k_final_;
    plan.seed = options_.seed;
    plan.algorithm = kind_label(options_, merge_factor_);
    plan.triples_ingested = triples_ingested_;
    plan.peak_state_entries = peak_state_ +
                              static_cast<std::size_t>(k_fine_) * k_fine_ +
                              2 * k_fine_;
    if (csr_vertices_ > 0) {
      plan.assignment.assign(csr_vertices_, 0);
      for (std::size_t v = 0; v < csr_vertices_; ++v) {
        const auto it = index_.find(static_cast<std::uint32_t>(v));
        plan.assignment[v] = it != index_.end() ? owners_[it->second]
                                                : least_loaded(1);
      }
    } else {
      plan.owners.reserve(keys_.size());
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        plan.owners.emplace(keys_[i], owners_[i]);
      }
    }
    plan.metrics = metrics_from_state();
    plan.partition_seconds = ingest_seconds_ + watch.elapsed_seconds();
    return plan;
  }

  [[nodiscard]] std::string name() const override {
    std::string label;
    switch (options_.kind) {
      case PartitionerKind::kHdrf:
        label = "HDRF";
        break;
      case PartitionerKind::kFennel:
        label = "Fennel";
        break;
      case PartitionerKind::kNe:
        label = "NE";
        break;
      case PartitionerKind::kMultilevel:
        label = "Multilevel";
        break;
    }
    if (merge_factor_ > 1) {
      label += "+SM";
    }
    return label;
  }

  /// CSR replay: vertex ids are the stream keys; each merged undirected
  /// edge is fed once, in vertex order, so the result is deterministic.
  void ingest_csr(const Graph& graph) {
    csr_vertices_ = graph.num_vertices();
    csr_weights_ = &graph.vwgt;
    for (std::uint32_t v = 0; v < csr_vertices_; ++v) {
      ++triples_ingested_;
      if (graph.xadj[v + 1] == graph.xadj[v]) {
        push(v, v);
        continue;
      }
      for (const std::uint32_t u : graph.neighbors(v)) {
        if (u > v) {
          push(v, u);
        }
      }
    }
  }

 private:
  // --- stream state: all O(|V| + k^2 + window) ---

  bool excluded(rdf::TermId term) const {
    return exclude_ != nullptr && exclude_->contains(term);
  }

  std::uint32_t intern(std::uint32_t key) {
    const auto [it, fresh] =
        index_.try_emplace(key, static_cast<std::uint32_t>(keys_.size()));
    if (fresh) {
      keys_.push_back(key);
      owners_.push_back(kUnassigned);
      degrees_.push_back(0);
      masks_.push_back(0);
      weights_.push_back(
          csr_weights_ != nullptr && key < csr_weights_->size()
              ? (*csr_weights_)[key]
              : 1);
    }
    return it->second;
  }

  void push(std::uint32_t key_a, std::uint32_t key_b) {
    const std::uint32_t a = intern(key_a);
    const std::uint32_t b = key_b == key_a ? a : intern(key_b);
    window_.push_back({a, b});
    peak_state_ = std::max(peak_state_, keys_.size() + window_.size());
    if (window_.size() >= window_cap_) {
      process_window();
    }
  }

  // Progressive balance cap: a partition is eligible for weight w only if
  // that keeps it within (1 + slack) x the running proportional share.
  // The fallback (least-loaded) is itself <= the average, so the final
  // loads obey max_load <= (1 + slack) * total / k + max_vertex_weight.
  bool eligible(std::uint32_t p, std::uint64_t w) const {
    const double cap = (1.0 + options_.balance_slack) *
                       (static_cast<double>(assigned_weight_ + w) / k_fine_);
    return static_cast<double>(loads_[p] + w) <= cap;
  }

  std::uint32_t least_loaded(std::uint64_t /*w*/) const {
    std::uint32_t best = 0;
    for (std::uint32_t p = 1; p < k_fine_; ++p) {
      if (loads_[p] < loads_[best]) {
        best = p;
      }
    }
    return best;
  }

  void assign_node(std::uint32_t id, std::uint32_t p) {
    owners_[id] = p;
    masks_[id] |= std::uint64_t{1} << p;
    loads_[p] += weights_[id];
    assigned_weight_ += weights_[id];
  }

  void account_edge(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t pa = owners_[a];
    const std::uint32_t pb = owners_[b];
    masks_[a] |= std::uint64_t{1} << pb;
    masks_[b] |= std::uint64_t{1} << pa;
    if (pa != pb) {
      const auto lo = std::min(pa, pb);
      const auto hi = std::max(pa, pb);
      ++cut_matrix_[static_cast<std::size_t>(lo) * k_fine_ + hi];
    }
  }

  // --- windowing ---

  struct Entry {
    std::uint32_t a;
    std::uint32_t b;
  };

  void process_window() {
    if (window_.empty()) {
      return;
    }
    util::Stopwatch watch;
    switch (options_.kind) {
      case PartitionerKind::kHdrf:
        process_hdrf();
        break;
      case PartitionerKind::kFennel:
        process_fennel();
        break;
      case PartitionerKind::kNe:
        process_ne();
        break;
      case PartitionerKind::kMultilevel:
        throw std::logic_error("multilevel is not a streaming kind");
    }
    window_.clear();
    ingest_seconds_ += watch.elapsed_seconds();
  }

  void process_hdrf() {
    for (const Entry& e : window_) {
      if (e.a == e.b) {
        if (owners_[e.a] == kUnassigned) {
          assign_node(e.a, pick_balanced(weights_[e.a]));
        }
        continue;
      }
      ++degrees_[e.a];
      ++degrees_[e.b];
      const bool ua = owners_[e.a] == kUnassigned;
      const bool ub = owners_[e.b] == kUnassigned;
      if (ua || ub) {
        const std::uint32_t p = pick_hdrf(e.a, e.b, ua, ub);
        if (ua) {
          assign_node(e.a, p);
        }
        if (ub) {
          assign_node(e.b, p);
        }
      }
      account_edge(e.a, e.b);
    }
  }

  /// HDRF score: replica affinity weighted by normalized partial degree
  /// (the lower-degree endpoint "follows" its partner, so high-degree hubs
  /// absorb the replication) plus λ x a normalized load gap.
  std::uint32_t pick_hdrf(std::uint32_t a, std::uint32_t b, bool ua,
                          bool ub) const {
    const double da = static_cast<double>(degrees_[a]);
    const double db = static_cast<double>(degrees_[b]);
    const double theta_a = da / (da + db);
    const std::uint64_t need =
        (ua ? weights_[a] : 0) + (ub ? weights_[b] : 0);
    std::uint64_t max_load = 0;
    std::uint64_t min_load = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t p = 0; p < k_fine_; ++p) {
      max_load = std::max(max_load, loads_[p]);
      min_load = std::min(min_load, loads_[p]);
    }
    const double spread =
        1e-9 + static_cast<double>(max_load) - static_cast<double>(min_load);
    std::uint32_t best = kUnassigned;
    std::uint32_t fallback = 0;
    double best_score = 0.0;
    for (std::uint32_t p = 0; p < k_fine_; ++p) {
      double score = 0.0;
      if ((masks_[a] >> p) & 1u) {
        score += 1.0 + (1.0 - theta_a);
      }
      if ((masks_[b] >> p) & 1u) {
        score += 1.0 + theta_a;
      }
      score += options_.hdrf_lambda *
               (static_cast<double>(max_load) -
                static_cast<double>(loads_[p])) /
               spread;
      if (loads_[p] < loads_[fallback]) {
        fallback = p;
      }
      if (eligible(p, need) && (best == kUnassigned || score > best_score)) {
        best = p;
        best_score = score;
      }
    }
    return best != kUnassigned ? best : fallback;
  }

  /// Pure balance pick (isolated vertices): least-loaded eligible.
  std::uint32_t pick_balanced(std::uint64_t w) const {
    std::uint32_t best = kUnassigned;
    std::uint32_t fallback = 0;
    for (std::uint32_t p = 0; p < k_fine_; ++p) {
      if (loads_[p] < loads_[fallback]) {
        fallback = p;
      }
      if (eligible(p, w) &&
          (best == kUnassigned || loads_[p] < loads_[best])) {
        best = p;
      }
    }
    return best != kUnassigned ? best : fallback;
  }

  /// Window-local adjacency (first-appearance node order + per-node
  /// neighbor lists), shared by Fennel and NE.  State is proportional to
  /// the window, not the stream.
  struct WindowView {
    std::vector<std::uint32_t> nodes;                 // first-appearance order
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adj;
  };

  WindowView build_window_view() {
    WindowView view;
    view.nodes.reserve(window_.size());
    auto touch = [&](std::uint32_t id) {
      if (window_epoch_of_.size() <= id) {
        window_epoch_of_.resize(keys_.size(), 0);
      }
      if (window_epoch_of_[id] != window_epoch_) {
        window_epoch_of_[id] = window_epoch_;
        view.nodes.push_back(id);
      }
    };
    ++window_epoch_;
    for (const Entry& e : window_) {
      touch(e.a);
      if (e.b != e.a) {
        touch(e.b);
        view.adj[e.a].push_back(e.b);
        view.adj[e.b].push_back(e.a);
      }
    }
    return view;
  }

  void process_fennel() {
    const WindowView view = build_window_view();
    const double gamma = options_.fennel_gamma;
    std::vector<double> affinity(k_fine_, 0.0);
    for (const std::uint32_t v : view.nodes) {
      if (owners_[v] != kUnassigned) {
        continue;
      }
      std::fill(affinity.begin(), affinity.end(), 0.0);
      if (const auto it = view.adj.find(v); it != view.adj.end()) {
        for (const std::uint32_t u : it->second) {
          if (owners_[u] != kUnassigned) {
            affinity[owners_[u]] += 1.0;
          }
        }
      }
      const double norm =
          static_cast<double>(k_fine_) /
          (static_cast<double>(assigned_weight_) + 1.0);
      std::uint32_t best = kUnassigned;
      std::uint32_t fallback = 0;
      double best_score = 0.0;
      for (std::uint32_t p = 0; p < k_fine_; ++p) {
        const double score =
            affinity[p] - gamma * static_cast<double>(loads_[p]) * norm;
        if (loads_[p] < loads_[fallback]) {
          fallback = p;
        }
        if (eligible(p, weights_[v]) &&
            (best == kUnassigned || score > best_score)) {
          best = p;
          best_score = score;
        }
      }
      assign_node(v, best != kUnassigned ? best : fallback);
    }
    for (const Entry& e : window_) {
      if (e.a != e.b) {
        account_edge(e.a, e.b);
      }
    }
  }

  void process_ne() {
    const WindowView view = build_window_view();
    const std::size_t region_cap =
        std::max<std::size_t>(2, view.nodes.size() / k_fine_);
    std::vector<std::uint32_t> region;
    std::vector<double> affinity(k_fine_, 0.0);
    ++region_epoch_;
    if (region_epoch_of_.size() < keys_.size()) {
      region_epoch_of_.resize(keys_.size(), 0);
    }
    for (const std::uint32_t seed : view.nodes) {
      if (owners_[seed] != kUnassigned ||
          region_epoch_of_[seed] == region_epoch_) {
        continue;
      }
      // Grow a BFS region through unassigned window neighbors.
      region.clear();
      region.push_back(seed);
      region_epoch_of_[seed] = region_epoch_;
      for (std::size_t head = 0;
           head < region.size() && region.size() < region_cap; ++head) {
        const auto it = view.adj.find(region[head]);
        if (it == view.adj.end()) {
          continue;
        }
        for (const std::uint32_t u : it->second) {
          if (region.size() >= region_cap) {
            break;
          }
          if (owners_[u] == kUnassigned &&
              region_epoch_of_[u] != region_epoch_) {
            region_epoch_of_[u] = region_epoch_;
            region.push_back(u);
          }
        }
      }
      // Boundary affinity: partitions already holding region neighbors.
      std::fill(affinity.begin(), affinity.end(), 0.0);
      std::uint64_t region_weight = 0;
      for (const std::uint32_t v : region) {
        region_weight += weights_[v];
        if (const auto it = view.adj.find(v); it != view.adj.end()) {
          for (const std::uint32_t u : it->second) {
            if (owners_[u] != kUnassigned) {
              affinity[owners_[u]] += 1.0;
            }
          }
        }
      }
      std::uint32_t best = kUnassigned;
      std::uint32_t fallback = 0;
      double best_score = 0.0;
      for (std::uint32_t p = 0; p < k_fine_; ++p) {
        // Affinity first, least-loaded among equals.
        const double score = affinity[p] * static_cast<double>(k_fine_) -
                             1e-6 * static_cast<double>(loads_[p]);
        if (loads_[p] < loads_[fallback]) {
          fallback = p;
        }
        if (eligible(p, region_weight) &&
            (best == kUnassigned || score > best_score)) {
          best = p;
          best_score = score;
        }
      }
      const std::uint32_t p = best != kUnassigned ? best : fallback;
      for (const std::uint32_t v : region) {
        assign_node(v, p);
      }
    }
    for (const Entry& e : window_) {
      if (e.a != e.b) {
        account_edge(e.a, e.b);
      }
    }
  }

  // --- split-merge + plan assembly ---

  void merge_to_final() {
    const std::vector<std::uint32_t> remap = split_merge_remap(
        masks_, loads_, static_cast<int>(k_final_), options_.balance_slack);
    std::vector<std::uint64_t> folded_loads(k_final_, 0);
    for (std::uint32_t p = 0; p < k_fine_; ++p) {
      folded_loads[remap[p]] += loads_[p];
    }
    std::vector<std::uint64_t> folded_cut(
        static_cast<std::size_t>(k_final_) * k_final_, 0);
    for (std::uint32_t p = 0; p < k_fine_; ++p) {
      for (std::uint32_t q = p + 1; q < k_fine_; ++q) {
        const std::uint64_t c =
            cut_matrix_[static_cast<std::size_t>(p) * k_fine_ + q];
        if (c == 0 || remap[p] == remap[q]) {
          continue;
        }
        const auto lo = std::min(remap[p], remap[q]);
        const auto hi = std::max(remap[p], remap[q]);
        folded_cut[static_cast<std::size_t>(lo) * k_final_ + hi] += c;
      }
    }
    for (std::size_t i = 0; i < owners_.size(); ++i) {
      if (owners_[i] != kUnassigned) {
        owners_[i] = remap[owners_[i]];
      }
      std::uint64_t folded = 0;
      std::uint64_t mask = masks_[i];
      while (mask != 0) {
        const int bit = std::countr_zero(mask);
        mask &= mask - 1;
        folded |= std::uint64_t{1} << remap[static_cast<std::uint32_t>(bit)];
      }
      masks_[i] = folded;
    }
    loads_ = std::move(folded_loads);
    cut_matrix_ = std::move(folded_cut);
    k_fine_ = k_final_;
  }

  PartitionMetrics metrics_from_state() const {
    std::uint64_t cut = 0;
    for (const std::uint64_t c : cut_matrix_) {
      cut += c;
    }
    return metrics_from_replica_masks(masks_, loads_, cut);
  }

  PartitionerOptions options_;
  const rdf::Dictionary* dict_;
  const ExcludedTerms* exclude_;
  std::uint32_t k_final_;
  std::uint32_t k_fine_ = 0;
  unsigned merge_factor_ = 1;

  // Dense per-node state, parallel arrays indexed by first-seen id.
  std::unordered_map<std::uint32_t, std::uint32_t> index_;  // key -> id
  std::vector<std::uint32_t> keys_;      // id -> key (TermId or vertex id)
  std::vector<std::uint32_t> owners_;    // id -> partition (or kUnassigned)
  std::vector<std::uint32_t> degrees_;   // id -> partial degree (HDRF)
  std::vector<std::uint64_t> masks_;     // id -> replica bitmask
  std::vector<std::uint64_t> weights_;   // id -> vertex weight

  std::vector<std::uint64_t> loads_;       // partition -> assigned weight
  std::vector<std::uint64_t> cut_matrix_;  // [lo * k + hi] cross edges
  std::uint64_t assigned_weight_ = 0;

  std::vector<Entry> window_;
  std::size_t window_cap_ = 0;
  std::vector<std::uint32_t> window_epoch_of_;
  std::uint32_t window_epoch_ = 0;
  std::vector<std::uint32_t> region_epoch_of_;
  std::uint32_t region_epoch_ = 0;

  std::size_t csr_vertices_ = 0;
  const std::vector<std::uint64_t>* csr_weights_ = nullptr;

  std::size_t triples_ingested_ = 0;
  std::size_t peak_state_ = 0;
  double ingest_seconds_ = 0.0;
};

}  // namespace

std::unique_ptr<Partitioner> make_streaming_partitioner(
    const PartitionerOptions& options, const rdf::Dictionary& dict,
    std::uint32_t num_partitions, const ExcludedTerms* exclude) {
  if (options.kind == PartitionerKind::kMultilevel) {
    throw std::invalid_argument(
        "multilevel is not a streaming partitioner; use make_partitioner");
  }
  return std::make_unique<StreamingImpl>(options, &dict, num_partitions,
                                         exclude);
}

PartitionPlan streaming_csr_plan(const Graph& graph, int k,
                                 const PartitionerOptions& options) {
  util::Stopwatch watch;
  StreamingImpl impl(options, nullptr, static_cast<std::uint32_t>(k),
                     nullptr);
  impl.ingest_csr(graph);
  PartitionPlan plan = impl.finalize();
  // The full graph exists here, so score the assignment exactly.
  plan.metrics = compute_graph_metrics(graph, plan.assignment, k);
  plan.partition_seconds = watch.elapsed_seconds();
  return plan;
}

std::vector<std::uint32_t> split_merge_remap(
    std::span<const std::uint64_t> masks,
    std::span<const std::uint64_t> part_weights, int coarse_k, double slack) {
  const std::uint32_t k_fine = static_cast<std::uint32_t>(part_weights.size());
  std::vector<std::uint32_t> group_of(k_fine);
  for (std::uint32_t p = 0; p < k_fine; ++p) {
    group_of[p] = p;
  }
  if (k_fine <= static_cast<std::uint32_t>(coarse_k)) {
    return group_of;
  }

  std::vector<std::uint64_t> weight(part_weights.begin(), part_weights.end());
  std::vector<std::uint8_t> active(k_fine, 1);
  std::uint64_t total = 0;
  for (const std::uint64_t w : weight) {
    total += w;
  }
  const double cap = (1.0 + slack) * static_cast<double>(total) /
                     static_cast<double>(coarse_k);

  std::vector<std::uint64_t> gain(static_cast<std::size_t>(k_fine) * k_fine);
  std::uint32_t remaining = k_fine;
  std::vector<std::uint32_t> bits;
  bits.reserve(64);
  while (remaining > static_cast<std::uint32_t>(coarse_k)) {
    // Replication saved by merging groups (a, b): the number of vertices
    // replicated on both.  Recomputed from the folded masks each round —
    // at most k_fine - coarse_k <= 63 rounds.
    std::fill(gain.begin(), gain.end(), 0);
    for (const std::uint64_t mask : masks) {
      bits.clear();
      std::uint64_t folded_seen = 0;
      std::uint64_t rest = mask;
      while (rest != 0) {
        const int bit = std::countr_zero(rest);
        rest &= rest - 1;
        const std::uint32_t g = group_of[static_cast<std::uint32_t>(bit)];
        if (((folded_seen >> g) & 1u) == 0) {
          folded_seen |= std::uint64_t{1} << g;
          bits.push_back(g);
        }
      }
      for (std::size_t i = 0; i < bits.size(); ++i) {
        for (std::size_t j = i + 1; j < bits.size(); ++j) {
          const auto lo = std::min(bits[i], bits[j]);
          const auto hi = std::max(bits[i], bits[j]);
          ++gain[static_cast<std::size_t>(lo) * k_fine + hi];
        }
      }
    }

    // Pick the best mergeable pair: max gain, then min combined weight,
    // then lowest ids.  If no pair respects the cap, force-merge the two
    // lightest groups.
    std::uint32_t best_a = kUnassigned;
    std::uint32_t best_b = kUnassigned;
    std::uint64_t best_gain = 0;
    std::uint64_t best_weight = 0;
    bool found = false;
    for (std::uint32_t a = 0; a < k_fine; ++a) {
      if (!active[a]) {
        continue;
      }
      for (std::uint32_t b = a + 1; b < k_fine; ++b) {
        if (!active[b]) {
          continue;
        }
        const std::uint64_t w = weight[a] + weight[b];
        if (static_cast<double>(w) > cap) {
          continue;
        }
        const std::uint64_t g =
            gain[static_cast<std::size_t>(a) * k_fine + b];
        if (!found || g > best_gain ||
            (g == best_gain && w < best_weight)) {
          found = true;
          best_a = a;
          best_b = b;
          best_gain = g;
          best_weight = w;
        }
      }
    }
    if (!found) {
      // Cap unsatisfiable: merge the two lightest active groups.
      for (std::uint32_t p = 0; p < k_fine; ++p) {
        if (!active[p]) {
          continue;
        }
        if (best_a == kUnassigned || weight[p] < weight[best_a]) {
          best_b = best_a;
          best_a = p;
        } else if (best_b == kUnassigned || weight[p] < weight[best_b]) {
          best_b = p;
        }
      }
      if (best_a > best_b) {
        std::swap(best_a, best_b);
      }
    }

    weight[best_a] += weight[best_b];
    active[best_b] = 0;
    for (std::uint32_t p = 0; p < k_fine; ++p) {
      if (group_of[p] == best_b) {
        group_of[p] = best_a;
      }
    }
    --remaining;
  }

  // Compact surviving groups to [0, coarse_k) in ascending id order.
  std::vector<std::uint32_t> compact(k_fine, 0);
  std::uint32_t next = 0;
  for (std::uint32_t p = 0; p < k_fine; ++p) {
    if (active[p]) {
      compact[p] = next++;
    }
  }
  for (std::uint32_t p = 0; p < k_fine; ++p) {
    group_of[p] = compact[group_of[p]];
  }
  return group_of;
}

}  // namespace parowl::partition
