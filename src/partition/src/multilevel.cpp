#include "parowl/partition/multilevel.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "parowl/partition/streaming.hpp"
#include "parowl/util/rng.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::partition {
namespace {

using util::Rng;

/// Heavy-edge matching: visit vertices in random order; match each
/// unmatched vertex with its unmatched neighbor of heaviest edge weight.
/// match[v] == v means unmatched (contracts to a singleton).
std::vector<std::uint32_t> heavy_edge_matching(const Graph& g, Rng& rng) {
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  std::vector<std::uint32_t> match(n);
  std::iota(match.begin(), match.end(), 0u);
  std::vector<bool> matched(n, false);

  for (const std::uint32_t v : order) {
    if (matched[v]) {
      continue;
    }
    std::uint32_t best = v;
    std::uint64_t best_w = 0;
    for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::uint32_t u = g.adjncy[e];
      if (!matched[u] && u != v && g.adjwgt[e] > best_w) {
        best_w = g.adjwgt[e];
        best = u;
      }
    }
    matched[v] = true;
    if (best != v) {
      matched[best] = true;
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

/// Contract matched pairs into coarse vertices.  Fills `coarse_of` (fine
/// vertex -> coarse vertex).
Graph contract(const Graph& g, const std::vector<std::uint32_t>& match,
               std::vector<std::uint32_t>& coarse_of) {
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  coarse_of.assign(n, 0);
  std::uint32_t next = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (match[v] >= v) {  // representative: self-matched or smaller endpoint
      coarse_of[v] = next;
      if (match[v] != v) {
        coarse_of[match[v]] = next;
      }
      ++next;
    }
  }

  std::vector<std::uint64_t> vwgt(next, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    vwgt[coarse_of[v]] += g.vwgt[v];
  }

  std::vector<WeightedEdge> edges;
  edges.reserve(g.adjncy.size() / 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::uint32_t u = g.adjncy[e];
      if (u < v) {
        continue;  // each undirected edge once
      }
      const std::uint32_t cv = coarse_of[v];
      const std::uint32_t cu = coarse_of[u];
      if (cv != cu) {
        edges.push_back(WeightedEdge{cv, cu, g.adjwgt[e]});
      }
    }
  }
  return build_graph(next, edges, vwgt);
}

std::uint64_t bisection_cut(const Graph& g,
                            const std::vector<std::uint8_t>& side) {
  std::uint64_t cut = 0;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::uint32_t u = g.adjncy[e];
      if (u > v && side[u] != side[v]) {
        cut += g.adjwgt[e];
      }
    }
  }
  return cut;
}

/// Fiduccia–Mattheyses refinement of a bisection: hill-climbing moves with
/// rollback to the best prefix, respecting the balance envelope.
void fm_refine(const Graph& g, std::vector<std::uint8_t>& side,
               std::uint64_t target0, double tolerance, int passes) {
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  if (n == 0) {
    return;
  }
  const std::uint64_t total = g.total_vwgt;
  const auto max0 = static_cast<std::uint64_t>(
      static_cast<double>(target0) * (1.0 + tolerance));
  const auto max1 = static_cast<std::uint64_t>(
      static_cast<double>(total - target0) * (1.0 + tolerance));

  std::vector<std::int64_t> gain(n);
  std::vector<bool> locked(n);

  for (int pass = 0; pass < passes; ++pass) {
    // gain(v) = (cut edges incident to v) - (internal edges incident to v):
    // the cut reduction from moving v to the other side.
    std::uint64_t w0 = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (side[v] == 0) {
        w0 += g.vwgt[v];
      }
      std::int64_t gv = 0;
      for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const auto w = static_cast<std::int64_t>(g.adjwgt[e]);
        gv += (side[g.adjncy[e]] != side[v]) ? w : -w;
      }
      gain[v] = gv;
    }
    std::uint64_t w1 = total - w0;
    std::fill(locked.begin(), locked.end(), false);

    // Lazy max-heaps of (gain, vertex), one per current side.
    using Item = std::pair<std::int64_t, std::uint32_t>;
    std::priority_queue<Item> heap[2];
    for (std::uint32_t v = 0; v < n; ++v) {
      heap[side[v]].push({gain[v], v});
    }

    struct Move {
      std::uint32_t v;
      std::int64_t gain;
    };
    std::vector<Move> moves;
    moves.reserve(n);
    std::int64_t cum = 0, best_cum = 0;
    std::size_t best_prefix = 0;
    int stall = 0;
    const int stall_limit = 256;

    while (stall < stall_limit) {
      // Pick the best feasible move across both heaps.
      int from = -1;
      std::uint32_t v = 0;
      std::int64_t best_gain = 0;
      for (int s = 0; s < 2; ++s) {
        while (!heap[s].empty()) {
          const auto [gv, cand] = heap[s].top();
          if (locked[cand] || side[cand] != s || gain[cand] != gv) {
            heap[s].pop();  // stale entry
            continue;
          }
          // Feasible iff the destination stays within its envelope.
          const std::uint64_t dest_w = (s == 0 ? w1 : w0) + g.vwgt[cand];
          const std::uint64_t dest_max = (s == 0 ? max1 : max0);
          if (dest_w > dest_max) {
            heap[s].pop();  // cannot move now; may requeue after others move
            continue;
          }
          if (from == -1 || gv > best_gain) {
            from = s;
            v = cand;
            best_gain = gv;
          }
          break;
        }
      }
      if (from == -1) {
        break;  // no feasible moves remain
      }
      heap[from].pop();
      locked[v] = true;
      side[v] = static_cast<std::uint8_t>(1 - from);
      if (from == 0) {
        w0 -= g.vwgt[v];
        w1 += g.vwgt[v];
      } else {
        w1 -= g.vwgt[v];
        w0 += g.vwgt[v];
      }
      cum += best_gain;
      moves.push_back(Move{v, best_gain});
      if (cum > best_cum) {
        best_cum = cum;
        best_prefix = moves.size();
        stall = 0;
      } else {
        ++stall;
      }
      // Update neighbor gains.
      for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const std::uint32_t u = g.adjncy[e];
        if (locked[u]) {
          continue;
        }
        const auto w = static_cast<std::int64_t>(g.adjwgt[e]);
        // v changed side: edges to v flip between internal and cut.
        gain[u] += (side[u] == side[v]) ? -2 * w : 2 * w;
        heap[side[u]].push({gain[u], u});
      }
    }

    // Roll back moves beyond the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const auto& m = moves[i - 1];
      side[m.v] = static_cast<std::uint8_t>(1 - side[m.v]);
    }
    if (best_cum <= 0) {
      break;  // pass achieved nothing; stop
    }
  }
}

/// Greedy BFS-grown initial bisection on the coarsest graph: grow side 0
/// from a random seed until it reaches target0 weight; restart BFS from an
/// unvisited vertex when a component is exhausted.  Several attempts, best
/// cut wins.
std::vector<std::uint8_t> initial_bisection(const Graph& g,
                                            std::uint64_t target0,
                                            const PartitionerOptions& options,
                                            Rng& rng) {
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  std::vector<std::uint8_t> best(n, 1);
  std::uint64_t best_cut = ~0ULL;

  const int attempts = 4;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<std::uint8_t> side(n, 1);
    std::vector<bool> visited(n, false);
    std::queue<std::uint32_t> frontier;
    std::uint64_t w0 = 0;

    while (w0 < target0) {
      if (frontier.empty()) {
        // Seed (or re-seed for the next component) at a random unvisited
        // vertex.
        std::uint32_t seed = 0;
        bool found = false;
        const std::uint32_t start = static_cast<std::uint32_t>(rng.below(n));
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint32_t cand = (start + i) % n;
          if (!visited[cand]) {
            seed = cand;
            found = true;
            break;
          }
        }
        if (!found) {
          break;  // everything visited
        }
        visited[seed] = true;
        frontier.push(seed);
      }
      const std::uint32_t v = frontier.front();
      frontier.pop();
      side[v] = 0;
      w0 += g.vwgt[v];
      for (const std::uint32_t u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          frontier.push(u);
        }
      }
    }

    fm_refine(g, side, target0, options.balance_slack,
              options.refine_passes);
    const std::uint64_t cut = bisection_cut(g, side);
    if (cut < best_cut) {
      best_cut = cut;
      best = std::move(side);
    }
  }
  return best;
}

/// Multilevel bisection of `g` with side-0 weight target `target0`.
std::vector<std::uint8_t> bisect(const Graph& g, std::uint64_t target0,
                                 const PartitionerOptions& options, Rng& rng) {
  if (g.num_vertices() <= options.coarsen_to) {
    return initial_bisection(g, target0, options, rng);
  }

  const auto match = heavy_edge_matching(g, rng);
  std::vector<std::uint32_t> coarse_of;
  Graph coarse = contract(g, match, coarse_of);

  // Coarsening stalls on graphs with few contractible edges; bail out to
  // the initial partitioner rather than recurse forever.
  if (coarse.num_vertices() >
      static_cast<std::size_t>(0.97 * static_cast<double>(g.num_vertices()))) {
    return initial_bisection(g, target0, options, rng);
  }

  const auto coarse_side = bisect(coarse, target0, options, rng);

  std::vector<std::uint8_t> side(g.num_vertices());
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    side[v] = coarse_side[coarse_of[v]];
  }
  if (options.refine) {
    fm_refine(g, side, target0, options.balance_slack,
              options.refine_passes);
  }
  return side;
}

/// Extract the subgraph induced by vertices with side[v] == s.
struct Subgraph {
  Graph graph;
  std::vector<std::uint32_t> orig;  // subgraph vertex -> parent vertex
};

Subgraph induce(const Graph& g, const std::vector<std::uint8_t>& side,
                std::uint8_t s) {
  Subgraph sub;
  std::vector<std::uint32_t> local(g.num_vertices(),
                                   ~static_cast<std::uint32_t>(0));
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    if (side[v] == s) {
      local[v] = static_cast<std::uint32_t>(sub.orig.size());
      sub.orig.push_back(v);
    }
  }
  std::vector<std::uint64_t> vwgt(sub.orig.size());
  std::vector<WeightedEdge> edges;
  for (std::uint32_t sv = 0; sv < sub.orig.size(); ++sv) {
    const std::uint32_t v = sub.orig[sv];
    vwgt[sv] = g.vwgt[v];
    for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::uint32_t u = g.adjncy[e];
      if (u > v && side[u] == s) {
        edges.push_back(WeightedEdge{sv, local[u], g.adjwgt[e]});
      }
    }
  }
  sub.graph = build_graph(sub.orig.size(), edges, vwgt);
  return sub;
}

void kway(const Graph& g, int k, std::uint32_t base,
          const PartitionerOptions& options, Rng& rng,
          const std::vector<std::uint32_t>& to_parent,
          std::vector<std::uint32_t>& assignment) {
  if (k <= 1 || g.num_vertices() == 0) {
    for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
      assignment[to_parent[v]] = base;
    }
    return;
  }
  const int k0 = k / 2;
  const auto target0 = static_cast<std::uint64_t>(
      static_cast<double>(g.total_vwgt) * k0 / k);
  const auto side = bisect(g, target0, options, rng);

  const Subgraph s0 = induce(g, side, 0);
  const Subgraph s1 = induce(g, side, 1);

  std::vector<std::uint32_t> parent0(s0.orig.size()), parent1(s1.orig.size());
  for (std::uint32_t v = 0; v < s0.orig.size(); ++v) {
    parent0[v] = to_parent[s0.orig[v]];
  }
  for (std::uint32_t v = 0; v < s1.orig.size(); ++v) {
    parent1[v] = to_parent[s1.orig[v]];
  }
  kway(s0.graph, k0, base, options, rng, parent0, assignment);
  kway(s1.graph, k - k0, base + static_cast<std::uint32_t>(k0), options, rng,
       parent1, assignment);
}

/// Raw k-way assignment — the only direct entry into the multilevel
/// machinery; every caller goes through the Partitioner API.
std::vector<std::uint32_t> multilevel_assign(const Graph& graph, int k,
                                             const PartitionerOptions& options) {
  assert(k >= 1);
  std::vector<std::uint32_t> assignment(graph.num_vertices(), 0);
  if (k > 1 && graph.num_vertices() > 0) {
    Rng rng(options.seed);
    std::vector<std::uint32_t> identity(graph.num_vertices());
    std::iota(identity.begin(), identity.end(), 0u);
    kway(graph, k, 0, options, rng, identity, assignment);
  }
  return assignment;
}

/// Placement replica masks for the split-merge pass: a vertex appears on
/// its own partition plus each neighbor's partition.  Requires k <= 64.
std::vector<std::uint64_t> placement_masks(
    const Graph& graph, const std::vector<std::uint32_t>& assignment) {
  std::vector<std::uint64_t> masks(graph.num_vertices(), 0);
  for (std::uint32_t v = 0; v < graph.num_vertices(); ++v) {
    std::uint64_t mask = std::uint64_t{1} << assignment[v];
    for (const std::uint32_t u : graph.neighbors(v)) {
      mask |= std::uint64_t{1} << assignment[u];
    }
    masks[v] = mask;
  }
  return masks;
}

}  // namespace

PartitionPlan multilevel_csr_plan(const Graph& graph, int k,
                                  const PartitionerOptions& options) {
  util::Stopwatch watch;
  // Replica masks are 64-bit, so the over-partitioned k * m is clamped.
  unsigned m = std::max(1u, options.split_merge_factor);
  while (m > 1 && static_cast<std::uint64_t>(k) * m > 64) {
    --m;
  }
  const int k_fine = k * static_cast<int>(m);
  std::vector<std::uint32_t> assignment =
      multilevel_assign(graph, k_fine, options);
  if (k_fine > k) {
    const std::vector<std::uint64_t> masks =
        placement_masks(graph, assignment);
    std::vector<std::uint64_t> weights(static_cast<std::size_t>(k_fine), 0);
    for (std::uint32_t v = 0; v < graph.num_vertices(); ++v) {
      weights[assignment[v]] += graph.vwgt[v];
    }
    const std::vector<std::uint32_t> remap =
        split_merge_remap(masks, weights, k, options.balance_slack);
    for (std::uint32_t& a : assignment) {
      a = remap[a];
    }
  }

  PartitionPlan plan;
  plan.assignment = std::move(assignment);
  plan.metrics = compute_graph_metrics(graph, plan.assignment, k);
  plan.partitions = static_cast<std::uint32_t>(k);
  plan.seed = options.seed;
  plan.algorithm =
      m > 1 ? "multilevel+sm" + std::to_string(m) : "multilevel";
  plan.triples_ingested = graph.num_edges();
  plan.peak_state_entries = graph.num_vertices() + 2 * graph.num_edges();
  plan.partition_seconds = watch.elapsed_seconds();
  return plan;
}

void MultilevelPartitioner::ingest(std::span<const rdf::Triple> chunk) {
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
}

PartitionPlan MultilevelPartitioner::finalize() {
  util::Stopwatch watch;
  const ResourceGraph rg = build_resource_graph(buffer_, *dict_, exclude_);
  PartitionPlan plan =
      multilevel_csr_plan(rg.graph, static_cast<int>(k_), options_);
  plan.owners.reserve(rg.node_term.size());
  for (std::uint32_t v = 0; v < rg.node_term.size(); ++v) {
    plan.owners.emplace(rg.node_term[v], plan.assignment[v]);
  }
  plan.assignment.clear();
  plan.assignment.shrink_to_fit();
  plan.triples_ingested = buffer_.size();
  plan.peak_state_entries =
      buffer_.size() + rg.node_term.size() + 2 * rg.graph.num_edges();
  plan.partition_seconds = watch.elapsed_seconds();
  return plan;
}

}  // namespace parowl::partition
