#include "parowl/partition/owner_policy.hpp"

#include <algorithm>

#include "parowl/util/strings.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::partition {

PartitionPlan OwnerPolicy::plan(std::span<const rdf::Triple> instance_triples,
                                const rdf::Dictionary& dict,
                                std::uint32_t num_partitions,
                                const ExcludedTerms* exclude) const {
  const std::unique_ptr<Partitioner> partitioner =
      create(dict, num_partitions, exclude);
  partitioner->ingest(instance_triples);
  return partitioner->finalize();
}

OwnerTable OwnerPolicy::assign(std::span<const rdf::Triple> instance_triples,
                               const rdf::Dictionary& dict,
                               std::uint32_t num_partitions,
                               const ExcludedTerms* exclude) const {
  return plan(instance_triples, dict, num_partitions, exclude).owners;
}

// --- PointwisePartitioner ---

PointwisePartitioner::PointwisePartitioner(OwnerFn owner_of,
                                           std::string algorithm,
                                           const rdf::Dictionary& dict,
                                           std::uint32_t num_partitions,
                                           const ExcludedTerms* exclude)
    : owner_of_(std::move(owner_of)),
      algorithm_(std::move(algorithm)),
      dict_(&dict),
      exclude_(exclude),
      k_(num_partitions) {
  loads_.assign(k_, 0);
  if (k_ <= 64) {
    cut_matrix_.assign(static_cast<std::size_t>(k_) * k_, 0);
  }
}

PointwisePartitioner::Node* PointwisePartitioner::touch(rdf::TermId term) {
  if (exclude_ != nullptr && exclude_->contains(term)) {
    return nullptr;
  }
  const auto [it, fresh] = nodes_.try_emplace(term);
  if (fresh) {
    it->second.owner = owner_of_(term, dict_->lexical(term));
    if (k_ <= 64) {
      it->second.mask = std::uint64_t{1} << it->second.owner;
    }
    ++loads_[it->second.owner];
  }
  return &it->second;
}

void PointwisePartitioner::ingest(std::span<const rdf::Triple> chunk) {
  util::Stopwatch watch;
  for (const rdf::Triple& t : chunk) {
    ++triples_ingested_;
    Node* s = touch(t.s);
    Node* o = dict_->is_resource(t.o) && t.o != t.s ? touch(t.o) : nullptr;
    if (s != nullptr && o != nullptr && k_ <= 64) {
      s->mask |= std::uint64_t{1} << o->owner;
      o->mask |= std::uint64_t{1} << s->owner;
      if (s->owner != o->owner) {
        const auto lo = std::min(s->owner, o->owner);
        const auto hi = std::max(s->owner, o->owner);
        ++cut_matrix_[static_cast<std::size_t>(lo) * k_ + hi];
      }
    }
  }
  peak_state_ = std::max(peak_state_, nodes_.size());
  ingest_seconds_ += watch.elapsed_seconds();
}

PartitionPlan PointwisePartitioner::finalize() {
  util::Stopwatch watch;
  PartitionPlan plan;
  plan.partitions = k_;
  plan.algorithm = algorithm_;
  plan.triples_ingested = triples_ingested_;
  plan.peak_state_entries = peak_state_ + cut_matrix_.size() + k_;
  plan.owners.reserve(nodes_.size());
  for (const auto& [term, node] : nodes_) {
    plan.owners.emplace(term, node.owner);
  }
  if (k_ <= 64) {
    std::vector<std::uint64_t> masks;
    masks.reserve(nodes_.size());
    for (const auto& [term, node] : nodes_) {
      masks.push_back(node.mask);
    }
    std::uint64_t cut = 0;
    for (const std::uint64_t c : cut_matrix_) {
      cut += c;
    }
    plan.metrics = metrics_from_replica_masks(masks, loads_, cut);
  } else {
    plan.metrics.partition_weights = loads_;
    plan.metrics.total_nodes = nodes_.size();
  }
  plan.partition_seconds = ingest_seconds_ + watch.elapsed_seconds();
  return plan;
}

// --- policies ---

std::unique_ptr<Partitioner> GraphOwnerPolicy::create(
    const rdf::Dictionary& dict, std::uint32_t num_partitions,
    const ExcludedTerms* exclude) const {
  return make_partitioner(options_, dict, num_partitions, exclude);
}

StreamingOwnerPolicy::StreamingOwnerPolicy(PartitionerOptions options,
                                           std::string label)
    : options_(options), label_(std::move(label)) {
  if (label_.empty()) {
    switch (options_.kind) {
      case PartitionerKind::kHdrf:
        label_ = "HDRF";
        break;
      case PartitionerKind::kFennel:
        label_ = "Fennel";
        break;
      case PartitionerKind::kNe:
        label_ = "NE";
        break;
      case PartitionerKind::kMultilevel:
        label_ = "Multilevel";
        break;
    }
    if (options_.split_merge_factor > 1) {
      label_ += "+SM";
    }
  }
}

std::unique_ptr<Partitioner> StreamingOwnerPolicy::create(
    const rdf::Dictionary& dict, std::uint32_t num_partitions,
    const ExcludedTerms* exclude) const {
  return make_partitioner(options_, dict, num_partitions, exclude);
}

std::uint32_t HashOwnerPolicy::owner_of(std::string_view lexical,
                                        std::uint32_t num_partitions) const {
  return static_cast<std::uint32_t>(
      util::mix64(util::fnv1a64(lexical) ^ salt_) % num_partitions);
}

std::unique_ptr<Partitioner> HashOwnerPolicy::create(
    const rdf::Dictionary& dict, std::uint32_t num_partitions,
    const ExcludedTerms* exclude) const {
  const std::uint64_t salt = salt_;
  return std::make_unique<PointwisePartitioner>(
      [salt, num_partitions](rdf::TermId, std::string_view lexical) {
        return static_cast<std::uint32_t>(
            util::mix64(util::fnv1a64(lexical) ^ salt) % num_partitions);
      },
      "hash", dict, num_partitions, exclude);
}

std::unique_ptr<Partitioner> DomainOwnerPolicy::create(
    const rdf::Dictionary& dict, std::uint32_t num_partitions,
    const ExcludedTerms* exclude) const {
  // Locality keys are mapped to partitions round-robin in first-seen order;
  // the map is the partitioner's own state, fresh per run.
  auto key_partition =
      std::make_shared<std::unordered_map<std::int64_t, std::uint32_t>>();
  const KeyExtractor extractor = extractor_;
  return std::make_unique<PointwisePartitioner>(
      [key_partition, extractor, num_partitions](
          rdf::TermId, std::string_view lexical) -> std::uint32_t {
        const std::int64_t key = extractor(lexical);
        if (key == kNoKey) {
          return static_cast<std::uint32_t>(
              util::mix64(util::fnv1a64(lexical)) % num_partitions);
        }
        const auto [it, fresh] = key_partition->try_emplace(
            key, static_cast<std::uint32_t>(key_partition->size() %
                                            num_partitions));
        return it->second;
      },
      "domain", dict, num_partitions, exclude);
}

std::int64_t lubm_university_key(std::string_view iri) {
  // Matches "...UnivN.edu..." anywhere in the authority; N is the key.
  const auto pos = iri.find("Univ");
  if (pos == std::string_view::npos) {
    return DomainOwnerPolicy::kNoKey;
  }
  std::size_t i = pos + 4;
  if (i >= iri.size() || iri[i] < '0' || iri[i] > '9') {
    return DomainOwnerPolicy::kNoKey;
  }
  std::int64_t value = 0;
  while (i < iri.size() && iri[i] >= '0' && iri[i] <= '9') {
    value = value * 10 + (iri[i] - '0');
    ++i;
  }
  return value;
}

}  // namespace parowl::partition
