#include "parowl/partition/owner_policy.hpp"

#include "parowl/util/strings.hpp"

namespace parowl::partition {
namespace {

bool is_excluded(const ExcludedTerms* exclude, rdf::TermId term) {
  return exclude != nullptr && exclude->contains(term);
}

}  // namespace

OwnerTable GraphOwnerPolicy::assign(
    std::span<const rdf::Triple> instance_triples, const rdf::Dictionary& dict,
    std::uint32_t num_partitions, const ExcludedTerms* exclude) const {
  const ResourceGraph rg =
      build_resource_graph(instance_triples, dict, exclude);
  const PartitionResult pr =
      partition_graph(rg.graph, static_cast<int>(num_partitions), options_);
  OwnerTable owners;
  owners.reserve(rg.node_term.size());
  for (std::uint32_t v = 0; v < rg.node_term.size(); ++v) {
    owners.emplace(rg.node_term[v], pr.assignment[v]);
  }
  return owners;
}

std::uint32_t HashOwnerPolicy::owner_of(std::string_view lexical,
                                        std::uint32_t num_partitions) const {
  return static_cast<std::uint32_t>(
      util::mix64(util::fnv1a64(lexical) ^ salt_) % num_partitions);
}

OwnerTable HashOwnerPolicy::assign(
    std::span<const rdf::Triple> instance_triples, const rdf::Dictionary& dict,
    std::uint32_t num_partitions, const ExcludedTerms* exclude) const {
  OwnerTable owners;
  auto add = [&](rdf::TermId term) {
    if (is_excluded(exclude, term) || owners.contains(term)) {
      return;
    }
    owners.emplace(term, owner_of(dict.lexical(term), num_partitions));
  };
  for (const rdf::Triple& t : instance_triples) {
    add(t.s);
    if (dict.is_resource(t.o)) {
      add(t.o);
    }
  }
  return owners;
}

OwnerTable DomainOwnerPolicy::assign(
    std::span<const rdf::Triple> instance_triples, const rdf::Dictionary& dict,
    std::uint32_t num_partitions, const ExcludedTerms* exclude) const {
  OwnerTable owners;
  // Locality keys are mapped to partitions round-robin in first-seen order.
  std::unordered_map<std::int64_t, std::uint32_t> key_partition;
  const HashOwnerPolicy fallback;

  auto add = [&](rdf::TermId term) {
    if (is_excluded(exclude, term) || owners.contains(term)) {
      return;
    }
    const std::string& lexical = dict.lexical(term);
    const std::int64_t key = extractor_(lexical);
    if (key == kNoKey) {
      owners.emplace(term, fallback.owner_of(lexical, num_partitions));
      return;
    }
    const auto [it, fresh] = key_partition.try_emplace(
        key,
        static_cast<std::uint32_t>(key_partition.size() % num_partitions));
    owners.emplace(term, it->second);
  };

  for (const rdf::Triple& t : instance_triples) {
    add(t.s);
    if (dict.is_resource(t.o)) {
      add(t.o);
    }
  }
  return owners;
}

std::int64_t lubm_university_key(std::string_view iri) {
  // Matches "...UnivN.edu..." anywhere in the authority; N is the key.
  const auto pos = iri.find("Univ");
  if (pos == std::string_view::npos) {
    return DomainOwnerPolicy::kNoKey;
  }
  std::size_t i = pos + 4;
  if (i >= iri.size() || iri[i] < '0' || iri[i] > '9') {
    return DomainOwnerPolicy::kNoKey;
  }
  std::int64_t value = 0;
  while (i < iri.size() && iri[i] >= '0' && iri[i] <= '9') {
    value = value * 10 + (iri[i] - '0');
    ++i;
  }
  return value;
}

}  // namespace parowl::partition
