#include "parowl/partition/graph.hpp"

#include <algorithm>
#include <cassert>

namespace parowl::partition {

Graph build_graph(std::size_t num_vertices,
                  std::span<const WeightedEdge> edges,
                  std::span<const std::uint64_t> vertex_weights) {
  // Normalize to (min, max) endpoint order, drop self-loops, sort, merge.
  std::vector<WeightedEdge> sorted;
  sorted.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    if (e.a == e.b) {
      continue;
    }
    sorted.push_back(WeightedEdge{std::min(e.a, e.b), std::max(e.a, e.b),
                                  e.weight});
  }
  std::ranges::sort(sorted, [](const WeightedEdge& x, const WeightedEdge& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });

  std::vector<WeightedEdge> merged;
  merged.reserve(sorted.size());
  for (const WeightedEdge& e : sorted) {
    if (!merged.empty() && merged.back().a == e.a && merged.back().b == e.b) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }

  Graph g;
  g.vwgt.assign(num_vertices, 1);
  if (!vertex_weights.empty()) {
    assert(vertex_weights.size() == num_vertices);
    g.vwgt.assign(vertex_weights.begin(), vertex_weights.end());
  }
  g.total_vwgt = 0;
  for (const auto w : g.vwgt) {
    g.total_vwgt += w;
  }

  // Degree count (each edge appears for both endpoints).
  std::vector<std::size_t> degree(num_vertices, 0);
  for (const WeightedEdge& e : merged) {
    ++degree[e.a];
    ++degree[e.b];
  }
  g.xadj.assign(num_vertices + 1, 0);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    g.xadj[v + 1] = g.xadj[v] + degree[v];
  }
  g.adjncy.assign(g.xadj.back(), 0);
  g.adjwgt.assign(g.xadj.back(), 0);

  std::vector<std::size_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (const WeightedEdge& e : merged) {
    g.adjncy[cursor[e.a]] = e.b;
    g.adjwgt[cursor[e.a]++] = e.weight;
    g.adjncy[cursor[e.b]] = e.a;
    g.adjwgt[cursor[e.b]++] = e.weight;
  }
  return g;
}

ResourceGraph build_resource_graph(
    std::span<const rdf::Triple> instance_triples, const rdf::Dictionary& dict,
    const ExcludedTerms* exclude) {
  ResourceGraph rg;
  auto excluded = [exclude](rdf::TermId term) {
    return exclude != nullptr && exclude->contains(term);
  };
  auto vertex = [&rg](rdf::TermId term) {
    const auto [it, fresh] = rg.node_of.try_emplace(
        term, static_cast<std::uint32_t>(rg.node_term.size()));
    if (fresh) {
      rg.node_term.push_back(term);
    }
    return it->second;
  };

  std::vector<WeightedEdge> edges;
  edges.reserve(instance_triples.size());
  for (const rdf::Triple& t : instance_triples) {
    if (excluded(t.s)) {
      continue;
    }
    const auto sv = vertex(t.s);
    if (dict.is_resource(t.o) && !excluded(t.o)) {
      edges.push_back(WeightedEdge{sv, vertex(t.o), 1});
    }
  }
  rg.graph = build_graph(rg.node_term.size(), edges);
  return rg;
}

}  // namespace parowl::partition
