#include "parowl/partition/partitioner.hpp"

#include "parowl/partition/multilevel.hpp"
#include "parowl/partition/streaming.hpp"

namespace parowl::partition {

std::unique_ptr<Partitioner> make_partitioner(
    const PartitionerOptions& options, const rdf::Dictionary& dict,
    std::uint32_t num_partitions, const ExcludedTerms* exclude) {
  if (options.kind == PartitionerKind::kMultilevel) {
    return std::make_unique<MultilevelPartitioner>(options, dict,
                                                   num_partitions, exclude);
  }
  return make_streaming_partitioner(options, dict, num_partitions, exclude);
}

PartitionPlan partition_csr_graph(const Graph& graph, int k,
                                  const PartitionerOptions& options) {
  if (options.kind == PartitionerKind::kMultilevel) {
    return multilevel_csr_plan(graph, k, options);
  }
  return streaming_csr_plan(graph, k, options);
}

std::optional<PartitionerKind> partitioner_kind_from(std::string_view name) {
  if (name == "multilevel" || name == "graph") {
    return PartitionerKind::kMultilevel;
  }
  if (name == "hdrf") {
    return PartitionerKind::kHdrf;
  }
  if (name == "fennel") {
    return PartitionerKind::kFennel;
  }
  if (name == "ne") {
    return PartitionerKind::kNe;
  }
  return std::nullopt;
}

std::string_view to_string(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kMultilevel:
      return "multilevel";
    case PartitionerKind::kHdrf:
      return "hdrf";
    case PartitionerKind::kFennel:
      return "fennel";
    case PartitionerKind::kNe:
      return "ne";
  }
  return "unknown";
}

}  // namespace parowl::partition
