#include "parowl/partition/data_partition.hpp"

#include "parowl/ontology/ontology.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::partition {

DataPartitioning partition_data(const rdf::TripleStore& store,
                                const rdf::Dictionary& dict,
                                const ontology::Vocabulary& vocab,
                                const OwnerPolicy& policy,
                                std::uint32_t num_partitions) {
  util::Stopwatch watch;
  DataPartitioning out;
  out.parts.resize(num_partitions);

  // Step 1: remove schema tuples; they are replicated, not partitioned.
  // Schema *elements* (classes, properties) must not become graph nodes
  // either: a class IRI in rdf:type object position would be a giant hub.
  const ontology::SchemaSplit split = ontology::split_schema(store, vocab);
  out.schema = split.schema;
  const ontology::Ontology onto = ontology::extract_ontology(store, vocab);
  const ExcludedTerms& schema_terms = onto.schema_terms;

  // Step 2: generate the owner list with the chosen policy (one streaming
  // pass through the Partitioner API; the plan's provenance rides along).
  PartitionPlan plan =
      policy.plan(split.instance, dict, num_partitions, &schema_terms);
  out.owners = std::move(plan.owners);
  out.algorithm = std::move(plan.algorithm);
  out.plan_metrics = std::move(plan.metrics);

  // Step 3: assign each tuple to the owner of its subject and the owner of
  // its object (when the object is an owned resource).
  for (const rdf::Triple& t : split.instance) {
    const auto sit = out.owners.find(t.s);
    // Every instance subject is a resource seen by the policy; guard anyway
    // so foreign tuples degrade gracefully to partition 0.
    const std::uint32_t sp = sit != out.owners.end() ? sit->second : 0;
    out.parts[sp].push_back(t);
    if (dict.is_resource(t.o)) {
      if (const auto oit = out.owners.find(t.o);
          oit != out.owners.end() && oit->second != sp) {
        out.parts[oit->second].push_back(t);
      }
    }
  }

  out.partition_seconds = watch.elapsed_seconds();
  return out;
}

void append_shard_destinations(const OwnerTable& owners, const rdf::Triple& t,
                               std::uint32_t num_partitions,
                               std::vector<std::uint32_t>& out) {
  const auto sit = owners.find(t.s);
  const auto oit = owners.find(t.o);
  if (sit == owners.end() && oit == owners.end()) {
    // No owned endpoint: replicate everywhere (schema-style triples).
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      out.push_back(p);
    }
    return;
  }
  if (sit != owners.end()) {
    out.push_back(sit->second);
  }
  if (oit != owners.end() &&
      (sit == owners.end() || oit->second != sit->second)) {
    out.push_back(oit->second);
  }
}

std::vector<std::uint32_t> pattern_footprint(const OwnerTable& owners,
                                             const rdf::Triple& pattern,
                                             std::uint32_t num_partitions) {
  // A constant owned endpoint narrows the pattern to one partition: every
  // triple carrying that endpoint is replicated to its owner's shard by
  // append_shard_destinations.  Schema terms and literals are unowned, so
  // patterns bound only to them still fan out everywhere.
  if (pattern.s != rdf::kAnyTerm) {
    if (const auto it = owners.find(pattern.s); it != owners.end()) {
      return {it->second};
    }
  }
  if (pattern.o != rdf::kAnyTerm) {
    if (const auto it = owners.find(pattern.o); it != owners.end()) {
      return {it->second};
    }
  }
  std::vector<std::uint32_t> all(num_partitions);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    all[p] = p;
  }
  return all;
}

}  // namespace parowl::partition
