#include "parowl/partition/data_partition.hpp"

#include "parowl/ontology/ontology.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::partition {

DataPartitioning partition_data(const rdf::TripleStore& store,
                                const rdf::Dictionary& dict,
                                const ontology::Vocabulary& vocab,
                                const OwnerPolicy& policy,
                                std::uint32_t num_partitions) {
  util::Stopwatch watch;
  DataPartitioning out;
  out.parts.resize(num_partitions);

  // Step 1: remove schema tuples; they are replicated, not partitioned.
  // Schema *elements* (classes, properties) must not become graph nodes
  // either: a class IRI in rdf:type object position would be a giant hub.
  const ontology::SchemaSplit split = ontology::split_schema(store, vocab);
  out.schema = split.schema;
  const ontology::Ontology onto = ontology::extract_ontology(store, vocab);
  const ExcludedTerms& schema_terms = onto.schema_terms;

  // Step 2: generate the owner list with the chosen policy.
  out.owners = policy.assign(split.instance, dict, num_partitions,
                             &schema_terms);

  // Step 3: assign each tuple to the owner of its subject and the owner of
  // its object (when the object is an owned resource).
  for (const rdf::Triple& t : split.instance) {
    const auto sit = out.owners.find(t.s);
    // Every instance subject is a resource seen by the policy; guard anyway
    // so foreign tuples degrade gracefully to partition 0.
    const std::uint32_t sp = sit != out.owners.end() ? sit->second : 0;
    out.parts[sp].push_back(t);
    if (dict.is_resource(t.o)) {
      if (const auto oit = out.owners.find(t.o);
          oit != out.owners.end() && oit->second != sp) {
        out.parts[oit->second].push_back(t);
      }
    }
  }

  out.partition_seconds = watch.elapsed_seconds();
  return out;
}

}  // namespace parowl::partition
