#include "parowl/partition/metrics.hpp"

#include <cmath>
#include <unordered_set>

namespace parowl::partition {

PartitionMetrics compute_partition_metrics(
    const DataPartitioning& partitioning, const rdf::Dictionary& dict) {
  PartitionMetrics m;
  std::unordered_set<rdf::TermId> all_nodes;
  std::size_t replicated_sum = 0;

  for (const auto& part : partitioning.parts) {
    // "Nodes" are owned resources: literals and schema elements (classes,
    // properties) are not graph vertices and never appear in the owner
    // table.
    std::unordered_set<rdf::TermId> nodes;
    for (const rdf::Triple& t : part) {
      if (partitioning.owners.contains(t.s)) {
        nodes.insert(t.s);
      }
      if (dict.is_resource(t.o) && partitioning.owners.contains(t.o)) {
        nodes.insert(t.o);
      }
    }
    m.nodes_per_partition.push_back(nodes.size());
    replicated_sum += nodes.size();
    all_nodes.insert(nodes.begin(), nodes.end());
  }
  m.total_nodes = all_nodes.size();

  // bal = population standard deviation of per-partition node counts.
  const double k = static_cast<double>(m.nodes_per_partition.size());
  if (k > 0) {
    double mean = 0.0;
    for (const std::size_t n : m.nodes_per_partition) {
      mean += static_cast<double>(n);
    }
    mean /= k;
    double var = 0.0;
    for (const std::size_t n : m.nodes_per_partition) {
      const double d = static_cast<double>(n) - mean;
      var += d * d;
    }
    m.bal = std::sqrt(var / k);
  }

  m.input_replication =
      m.total_nodes == 0
          ? 0.0
          : static_cast<double>(replicated_sum) /
                    static_cast<double>(m.total_nodes) -
                1.0;
  return m;
}

double output_replication(std::span<const std::size_t> per_partition_results,
                          std::size_t union_size) {
  if (union_size == 0) {
    return 0.0;
  }
  std::size_t sum = 0;
  for (const std::size_t n : per_partition_results) {
    sum += n;
  }
  return static_cast<double>(sum) / static_cast<double>(union_size) - 1.0;
}

}  // namespace parowl::partition
