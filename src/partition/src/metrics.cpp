#include "parowl/partition/metrics.hpp"

#include <bit>
#include <cmath>
#include <unordered_set>

#include "parowl/partition/data_partition.hpp"

namespace parowl::partition {
namespace {

double stddev_of(std::span<const std::size_t> counts) {
  const double k = static_cast<double>(counts.size());
  if (k == 0) {
    return 0.0;
  }
  double mean = 0.0;
  for (const std::size_t n : counts) {
    mean += static_cast<double>(n);
  }
  mean /= k;
  double var = 0.0;
  for (const std::size_t n : counts) {
    const double d = static_cast<double>(n) - mean;
    var += d * d;
  }
  return std::sqrt(var / k);
}

}  // namespace

PartitionMetrics compute_partition_metrics(
    const DataPartitioning& partitioning, const rdf::Dictionary& dict) {
  PartitionMetrics m;
  std::unordered_set<rdf::TermId> all_nodes;
  std::size_t replicated_sum = 0;

  for (const auto& part : partitioning.parts) {
    // "Nodes" are owned resources: literals and schema elements (classes,
    // properties) are not graph vertices and never appear in the owner
    // table.
    std::unordered_set<rdf::TermId> nodes;
    for (const rdf::Triple& t : part) {
      if (partitioning.owners.contains(t.s)) {
        nodes.insert(t.s);
      }
      if (dict.is_resource(t.o) && partitioning.owners.contains(t.o)) {
        nodes.insert(t.o);
      }
    }
    m.nodes_per_partition.push_back(nodes.size());
    replicated_sum += nodes.size();
    all_nodes.insert(nodes.begin(), nodes.end());
  }
  m.total_nodes = all_nodes.size();
  m.bal = stddev_of(m.nodes_per_partition);

  m.input_replication =
      m.total_nodes == 0
          ? 0.0
          : static_cast<double>(replicated_sum) /
                    static_cast<double>(m.total_nodes) -
                1.0;
  m.replication_factor = m.input_replication + 1.0;
  return m;
}

PartitionMetrics compute_graph_metrics(
    const Graph& graph, std::span<const std::uint32_t> assignment, int k) {
  PartitionMetrics m;
  const std::size_t n = graph.num_vertices();
  m.total_nodes = n;
  m.partition_weights.assign(static_cast<std::size_t>(k), 0);
  m.nodes_per_partition.assign(static_cast<std::size_t>(k), 0);

  // A vertex appears on its own partition plus every partition owning one
  // of its neighbors (the triple-placement rule: a triple is stored at the
  // owner of its subject and the owner of its object).  k <= 64 uses a
  // bitmask fast path; larger k falls back to a per-vertex flag vector.
  std::size_t replicated_sum = 0;
  std::vector<std::uint8_t> seen;
  if (k > 64) {
    seen.assign(static_cast<std::size_t>(k), 0);
  }
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t pv = assignment[v];
    m.partition_weights[pv] += graph.vwgt[v];
    if (k <= 64) {
      std::uint64_t mask = std::uint64_t{1} << pv;
      for (const std::uint32_t u : graph.neighbors(static_cast<std::uint32_t>(v))) {
        mask |= std::uint64_t{1} << assignment[u];
      }
      for (int p = 0; p < k; ++p) {
        if ((mask >> p) & 1u) {
          ++m.nodes_per_partition[static_cast<std::size_t>(p)];
          ++replicated_sum;
        }
      }
    } else {
      std::vector<std::uint32_t> touched;
      auto touch = [&](std::uint32_t p) {
        if (!seen[p]) {
          seen[p] = 1;
          touched.push_back(p);
        }
      };
      touch(pv);
      for (const std::uint32_t u : graph.neighbors(static_cast<std::uint32_t>(v))) {
        touch(assignment[u]);
      }
      for (const std::uint32_t p : touched) {
        seen[p] = 0;
        ++m.nodes_per_partition[p];
        ++replicated_sum;
      }
    }
  }

  // Edge cut: each undirected edge is stored once per endpoint; count the
  // lower-endpoint copy.
  for (std::size_t v = 0; v < n; ++v) {
    const auto begin = graph.xadj[v];
    const auto end = graph.xadj[v + 1];
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t u = graph.adjncy[e];
      if (u > v && assignment[u] != assignment[v]) {
        m.edge_cut += graph.adjwgt[e];
      }
    }
  }

  m.bal = stddev_of(m.nodes_per_partition);
  m.input_replication =
      n == 0 ? 0.0
             : static_cast<double>(replicated_sum) / static_cast<double>(n) -
                   1.0;
  m.replication_factor = m.input_replication + 1.0;
  return m;
}

PartitionMetrics metrics_from_replica_masks(
    std::span<const std::uint64_t> masks,
    std::span<const std::uint64_t> part_weights, std::uint64_t edge_cut) {
  PartitionMetrics m;
  const std::size_t k = part_weights.size();
  m.total_nodes = masks.size();
  m.partition_weights.assign(part_weights.begin(), part_weights.end());
  m.nodes_per_partition.assign(k, 0);
  m.edge_cut = edge_cut;
  std::size_t replicated_sum = 0;
  for (std::uint64_t mask : masks) {
    while (mask != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      ++m.nodes_per_partition[bit];
      ++replicated_sum;
    }
  }
  m.bal = stddev_of(m.nodes_per_partition);
  m.input_replication =
      m.total_nodes == 0
          ? 0.0
          : static_cast<double>(replicated_sum) /
                    static_cast<double>(m.total_nodes) -
                1.0;
  m.replication_factor = m.input_replication + 1.0;
  return m;
}

double output_replication(std::span<const std::size_t> per_partition_results,
                          std::size_t union_size) {
  if (union_size == 0) {
    return 0.0;
  }
  std::size_t sum = 0;
  for (const std::size_t n : per_partition_results) {
    sum += n;
  }
  return static_cast<double>(sum) / static_cast<double>(union_size) - 1.0;
}

}  // namespace parowl::partition
