#include "parowl/query/equality_expand.hpp"

#include <set>
#include <utility>
#include <vector>

#include "parowl/obs/obs.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::query {
namespace {

/// Position roles a variable takes across the BGP, deciding its expansion.
struct VarRoles {
  bool subject = false;
  bool predicate = false;
  bool object = false;
};

void note_roles(const rules::AtomTerm& t, std::vector<VarRoles>& roles,
                bool VarRoles::* role) {
  if (t.is_var()) {
    roles[static_cast<std::size_t>(t.var_index())].*role = true;
  }
}

std::vector<VarRoles> classify(const SelectQuery& query) {
  std::vector<VarRoles> roles(static_cast<std::size_t>(query.num_vars()));
  for (const rules::Atom& atom : query.where) {
    note_roles(atom.s, roles, &VarRoles::subject);
    note_roles(atom.p, roles, &VarRoles::predicate);
    note_roles(atom.o, roles, &VarRoles::object);
  }
  return roles;
}

/// Shape checks + constant rewriting shared by the inline and the split
/// (router) paths.  Returns false with *message set for unsupported shapes;
/// on success *where holds the BGP with constant subjects/objects rewritten
/// into representative space.
bool preflight(const SelectQuery& query, const reason::EqualityManager& eq,
               rdf::TermId same_as, const std::vector<VarRoles>& roles,
               std::vector<rules::Atom>* where, std::string* message) {
  for (const rules::Atom& atom : query.where) {
    if (atom.p.is_const() && atom.p.const_id() == same_as) {
      *message = "owl:sameAs pattern not answerable in rewrite mode";
      return false;
    }
    if (atom.o.is_const() && eq.literal_partner(atom.o.const_id())) {
      *message =
          "constant object is a sameAs literal partner; rewrite-mode "
          "matching cannot reach it";
      return false;
    }
  }
  for (const VarRoles& r : roles) {
    if (r.predicate && (r.subject || r.object)) {
      *message =
          "variable joins predicate and subject/object positions; equality "
          "members are not recoverable in predicate position";
      return false;
    }
  }
  *where = query.where;
  for (rules::Atom& atom : *where) {
    if (atom.s.is_const()) {
      atom.s = rules::AtomTerm::constant(eq.find(atom.s.const_id()));
    }
    if (atom.o.is_const()) {
      atom.o = rules::AtomTerm::constant(eq.find(atom.o.const_id()));
    }
  }
  return true;
}

/// Which variables need expansion at all: predicate-position variables
/// never expand, and under DISTINCT non-projected variables only affect
/// multiplicity, which DISTINCT discards.
std::vector<bool> expand_flags(const SelectQuery& query,
                               const std::vector<VarRoles>& roles) {
  const auto num_vars = static_cast<std::size_t>(query.num_vars());
  std::vector<bool> expand(num_vars, false);
  for (std::size_t v = 0; v < num_vars; ++v) {
    expand[v] = (roles[v].subject || roles[v].object) && !roles[v].predicate;
  }
  if (query.distinct) {
    std::vector<bool> projected(num_vars, false);
    for (const int v : query.projection) {
      projected[static_cast<std::size_t>(v)] = true;
    }
    for (std::size_t v = 0; v < num_vars; ++v) {
      expand[v] = expand[v] && projected[v];
    }
  }
  return expand;
}

/// Fans one representative-space solution out over the class members of
/// each expandable variable (depth-first product), emitting a projected row
/// per combination, with DISTINCT dedup and post-expansion LIMIT.
struct Expander {
  const SelectQuery& query;
  const std::vector<VarRoles>& roles;
  const std::vector<bool>& expand;
  const reason::EqualityManager& eq;
  EqualityEvalResult& out;

  std::set<std::vector<rdf::TermId>> dedup;
  bool done = false;
  rules::Binding expanded{};

  void emit(const rules::Binding& binding, std::size_t v) {
    if (done) {
      return;
    }
    if (v == static_cast<std::size_t>(query.num_vars())) {
      ++out.stats.rows_out;
      std::vector<rdf::TermId> row;
      row.reserve(query.projection.size());
      for (const int p : query.projection) {
        row.push_back(expanded[static_cast<std::size_t>(p)]);
      }
      if (query.distinct && !dedup.insert(row).second) {
        return;
      }
      out.results.rows.push_back(std::move(row));
      if (query.limit && out.results.rows.size() >= *query.limit) {
        done = true;
      }
      return;
    }
    const rdf::TermId value = binding[v];
    if (!expand[v]) {
      expanded[v] = value;
      emit(binding, v + 1);
      return;
    }
    // Subject-position variables range over resource members only (the
    // literal guard keeps literals out of subject position in the naive
    // closure); object-only variables also cover literal partners.
    const std::span<const rdf::TermId> members =
        roles[v].subject ? eq.subject_members(value)
                         : eq.object_members(value);
    if (members.empty()) {
      expanded[v] = value;  // untracked term: the class is {value}
      emit(binding, v + 1);
      return;
    }
    for (const rdf::TermId m : members) {
      expanded[v] = m;
      emit(binding, v + 1);
      if (done) {
        return;
      }
    }
  }
};

}  // namespace

EqualityEvalResult evaluate_with_equality(const rdf::TripleStore& store,
                                          const SelectQuery& query,
                                          const reason::EqualityManager& eq,
                                          rdf::TermId same_as) {
  EqualityEvalResult out;
  util::Stopwatch watch;
  obs::Span span("reason.eq.expand", {{"atoms", query.where.size()}});

  const std::vector<VarRoles> roles = classify(query);
  std::vector<rules::Atom> where;
  if (!preflight(query, eq, same_as, roles, &where, &out.message)) {
    out.unsupported = true;
    return out;
  }

  for (const int v : query.projection) {
    out.results.columns.push_back(
        query.variable_names[static_cast<std::size_t>(v)]);
  }
  const std::vector<bool> expand = expand_flags(query, roles);
  Expander expander{query, roles, expand, eq, out, {}, false, {}};
  solve_bgp(store, where, query.num_vars(),
            [&](const rules::Binding& binding) {
              ++out.stats.rows_in;
              expander.emit(binding, 0);
            });
  out.stats.seconds = watch.elapsed_seconds();
  span.arg({"rows_in", out.stats.rows_in});
  span.arg({"rows_out", out.stats.rows_out});
  return out;
}

std::optional<SelectQuery> rewrite_for_equality(
    const SelectQuery& query, const reason::EqualityManager& eq,
    rdf::TermId same_as, std::string* message) {
  const std::vector<VarRoles> roles = classify(query);
  SelectQuery widened;
  if (!preflight(query, eq, same_as, roles, &widened.where, message)) {
    return std::nullopt;
  }
  // Full-width, unordered, unbounded: projection/DISTINCT/LIMIT all apply
  // to *expanded* rows, in expand_equality_results.
  widened.variable_names = query.variable_names;
  widened.projection.reserve(widened.variable_names.size());
  for (int v = 0; v < widened.num_vars(); ++v) {
    widened.projection.push_back(v);
  }
  return widened;
}

EqualityEvalResult expand_equality_results(const SelectQuery& original,
                                           const ResultSet& rep_rows,
                                           const reason::EqualityManager& eq) {
  EqualityEvalResult out;
  util::Stopwatch watch;
  obs::Span span("reason.eq.expand", {{"atoms", original.where.size()}});

  const std::vector<VarRoles> roles = classify(original);
  for (const int v : original.projection) {
    out.results.columns.push_back(
        original.variable_names[static_cast<std::size_t>(v)]);
  }
  const std::vector<bool> expand = expand_flags(original, roles);
  Expander expander{original, roles, expand, eq, out, {}, false, {}};
  const auto num_vars = static_cast<std::size_t>(original.num_vars());
  for (const std::vector<rdf::TermId>& row : rep_rows.rows) {
    ++out.stats.rows_in;
    rules::Binding binding{};
    for (std::size_t v = 0; v < num_vars && v < row.size(); ++v) {
      binding[v] = row[v];
    }
    expander.emit(binding, 0);
    if (expander.done) {
      break;
    }
  }
  out.stats.seconds = watch.elapsed_seconds();
  span.arg({"rows_in", out.stats.rows_in});
  span.arg({"rows_out", out.stats.rows_out});
  return out;
}

}  // namespace parowl::query
