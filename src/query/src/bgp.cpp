#include "parowl/query/bgp.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "parowl/util/table.hpp"

namespace parowl::query {
namespace {

int bound_count(const rdf::TriplePattern& p) {
  return (p.s != rdf::kAnyTerm) + (p.p != rdf::kAnyTerm) +
         (p.o != rdf::kAnyTerm);
}

struct Enumerator {
  const rdf::TripleStore& store;
  std::span<const rules::Atom> bgp;
  const std::function<void(const rules::Binding&)>& fn;
  std::size_t solutions = 0;

  void recurse(unsigned done_mask, rules::Binding& binding) {
    if (done_mask == (1u << bgp.size()) - 1) {
      ++solutions;
      fn(binding);
      return;
    }
    // Most-bound-first join order.
    std::size_t best = bgp.size();
    int best_bound = -1;
    for (std::size_t i = 0; i < bgp.size(); ++i) {
      if (done_mask & (1u << i)) {
        continue;
      }
      const int b = bound_count(rules::to_pattern(bgp[i], binding));
      if (b > best_bound) {
        best_bound = b;
        best = i;
      }
    }
    const auto pattern = rules::to_pattern(bgp[best], binding);
    store.match(pattern, [&](const rdf::Triple& t) {
      rules::Binding saved = binding;
      if (rules::bind_atom(bgp[best], t, binding)) {
        recurse(done_mask | (1u << best), binding);
      }
      binding = saved;
    });
  }
};

}  // namespace

std::size_t solve_bgp(const rdf::TripleStore& store,
                      std::span<const rules::Atom> bgp, int num_vars,
                      const std::function<void(const rules::Binding&)>& fn) {
  (void)num_vars;
  if (bgp.empty()) {
    return 0;
  }
  Enumerator e{store, bgp, fn};
  rules::Binding binding{};
  e.recurse(0, binding);
  return e.solutions;
}

ResultSet evaluate(const rdf::TripleStore& store, const SelectQuery& query) {
  ResultSet results;
  for (const int v : query.projection) {
    results.columns.push_back(query.variable_names[static_cast<std::size_t>(v)]);
  }

  std::set<std::vector<rdf::TermId>> dedup;
  bool done = false;
  solve_bgp(store, query.where, query.num_vars(),
            [&](const rules::Binding& binding) {
              if (done) {
                return;
              }
              std::vector<rdf::TermId> row;
              row.reserve(query.projection.size());
              for (const int v : query.projection) {
                row.push_back(binding[static_cast<std::size_t>(v)]);
              }
              if (query.distinct && !dedup.insert(row).second) {
                return;
              }
              results.rows.push_back(std::move(row));
              if (query.limit && results.rows.size() >= *query.limit) {
                done = true;  // stop collecting (enumeration still finishes)
              }
            });
  return results;
}

std::string to_text(const ResultSet& results, const rdf::Dictionary& dict) {
  util::Table table(
      [&] {
        std::vector<std::string> header;
        for (const std::string& c : results.columns) {
          header.push_back("?" + c);
        }
        return header;
      }());
  for (const auto& row : results.rows) {
    std::vector<std::string> cells;
    for (const rdf::TermId id : row) {
      cells.push_back(id == rdf::kAnyTerm ? "?" : dict.lexical(id));
    }
    table.add_row(std::move(cells));
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace parowl::query
