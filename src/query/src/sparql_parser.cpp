#include "parowl/query/sparql_parser.hpp"

#include <cctype>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/util/strings.hpp"

namespace parowl::query {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

SparqlParser::SparqlParser(rdf::Dictionary& dict) : dict_(dict) {
  add_prefix("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
  add_prefix("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
  add_prefix("owl", "http://www.w3.org/2002/07/owl#");
}

void SparqlParser::add_prefix(std::string name, std::string iri) {
  prefixes_[std::move(name)] = std::move(iri);
}

std::optional<SelectQuery> SparqlParser::parse(std::string_view text,
                                               std::string* error) {
  auto fail = [error](std::string_view message) -> std::optional<SelectQuery> {
    if (error) {
      *error = std::string(message);
    }
    return std::nullopt;
  };

  // Tokenize up front; split trailing '.' into its own token.
  struct { std::string_view text; } sc{text};
  std::vector<std::string> tokens;
  {
    while (true) {
      // Manual scan to preserve '.' separation.
      while (!sc.text.empty() &&
             (std::isspace(static_cast<unsigned char>(sc.text.front())) ||
              sc.text.front() == '#')) {
        if (sc.text.front() == '#') {
          const auto eol = sc.text.find('\n');
          sc.text = eol == std::string_view::npos
                        ? std::string_view()
                        : sc.text.substr(eol + 1);
        } else {
          sc.text.remove_prefix(1);
        }
      }
      if (sc.text.empty()) {
        break;
      }
      const char c = sc.text.front();
      if (c == '{' || c == '}') {
        tokens.emplace_back(1, c);
        sc.text.remove_prefix(1);
        continue;
      }
      if (c == '<') {
        const auto end = sc.text.find('>');
        if (end == std::string_view::npos) {
          return fail("unterminated IRI");
        }
        tokens.emplace_back(sc.text.substr(0, end + 1));
        sc.text.remove_prefix(end + 1);
        continue;
      }
      if (c == '"') {
        std::size_t end = 1;
        while (end < sc.text.size() && sc.text[end] != '"') {
          end += sc.text[end] == '\\' ? 2 : 1;
        }
        if (end >= sc.text.size()) {
          return fail("unterminated literal");
        }
        ++end;
        while (end < sc.text.size() && sc.text[end] != ' ' &&
               sc.text[end] != '\t' && sc.text[end] != '\n' &&
               sc.text[end] != '}' && sc.text[end] != '.') {
          ++end;
        }
        tokens.emplace_back(sc.text.substr(0, end));
        sc.text.remove_prefix(end);
        continue;
      }
      std::size_t end = 0;
      while (end < sc.text.size() &&
             !std::isspace(static_cast<unsigned char>(sc.text[end])) &&
             sc.text[end] != '{' && sc.text[end] != '}') {
        ++end;
      }
      std::string token(sc.text.substr(0, end));
      sc.text.remove_prefix(end);
      // Separate a trailing triple-terminator '.'.
      if (token.size() > 1 && token.back() == '.') {
        token.pop_back();
        tokens.push_back(std::move(token));
        tokens.emplace_back(".");
        continue;
      }
      tokens.push_back(std::move(token));
    }
  }

  std::size_t pos = 0;
  auto peek = [&]() -> std::string_view {
    return pos < tokens.size() ? std::string_view(tokens[pos])
                               : std::string_view();
  };
  auto take = [&]() -> std::string_view {
    return pos < tokens.size() ? std::string_view(tokens[pos++])
                               : std::string_view();
  };

  SelectQuery query;
  std::unordered_map<std::string, int> var_ids;
  auto variable = [&](std::string_view name) {
    const auto [it, fresh] = var_ids.try_emplace(
        std::string(name), static_cast<int>(var_ids.size()));
    if (fresh) {
      query.variable_names.emplace_back(name);
    }
    return it->second;
  };

  // PREFIX declarations.
  while (iequals(peek(), "PREFIX")) {
    take();
    std::string name(take());
    if (name.empty() || name.back() != ':') {
      return fail("PREFIX name must end with ':'");
    }
    name.pop_back();
    const std::string_view iri = take();
    if (iri.size() < 2 || iri.front() != '<' || iri.back() != '>') {
      return fail("PREFIX expects <iri>");
    }
    add_prefix(name, std::string(iri.substr(1, iri.size() - 2)));
  }

  // SELECT clause.
  if (!iequals(take(), "SELECT")) {
    return fail("expected SELECT");
  }
  if (iequals(peek(), "DISTINCT")) {
    take();
    query.distinct = true;
  }
  bool select_star = false;
  while (!peek().empty() && !iequals(peek(), "WHERE") && peek() != "{") {
    const std::string_view tok = take();
    if (tok == "*") {
      select_star = true;
    } else if (tok.front() == '?') {
      query.projection.push_back(variable(tok.substr(1)));
    } else {
      return fail("SELECT expects ?variables or *");
    }
  }
  if (iequals(peek(), "WHERE")) {
    take();
  }
  if (take() != "{") {
    return fail("expected '{' to open the graph pattern");
  }

  // Graph pattern.
  const ontology::Vocabulary vocab(dict_);
  auto parse_term = [&](std::string_view tok,
                        bool object_position) -> std::optional<rules::AtomTerm> {
    if (tok.empty()) {
      return std::nullopt;
    }
    if (tok.front() == '?') {
      const int v = variable(tok.substr(1));
      if (v >= rules::kMaxRuleVars) {
        return std::nullopt;
      }
      return rules::AtomTerm::var(v);
    }
    if (tok == "a") {
      return rules::AtomTerm::constant(vocab.rdf_type);
    }
    if (tok.front() == '<' && tok.back() == '>') {
      return rules::AtomTerm::constant(
          dict_.intern_iri(tok.substr(1, tok.size() - 2)));
    }
    if (tok.front() == '"') {
      if (!object_position) {
        return std::nullopt;
      }
      return rules::AtomTerm::constant(dict_.intern_literal(tok));
    }
    const auto colon = tok.find(':');
    if (colon == std::string_view::npos) {
      return std::nullopt;
    }
    const auto it = prefixes_.find(std::string(tok.substr(0, colon)));
    if (it == prefixes_.end()) {
      return std::nullopt;
    }
    return rules::AtomTerm::constant(
        dict_.intern_iri(it->second + std::string(tok.substr(colon + 1))));
  };

  while (peek() != "}") {
    if (peek().empty()) {
      return fail("unterminated graph pattern");
    }
    rules::Atom atom;
    const auto s = parse_term(take(), false);
    const auto p = parse_term(take(), false);
    const auto o = parse_term(take(), true);
    if (!s || !p || !o) {
      return fail("malformed triple pattern");
    }
    atom.s = *s;
    atom.p = *p;
    atom.o = *o;
    query.where.push_back(atom);
    if (peek() == ".") {
      take();
    }
  }
  take();  // '}'

  // Optional LIMIT.
  if (iequals(peek(), "LIMIT")) {
    take();
    const std::string_view n = take();
    std::size_t value = 0;
    for (const char c : n) {
      if (c < '0' || c > '9') {
        return fail("LIMIT expects a number");
      }
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    query.limit = value;
  }
  if (!peek().empty()) {
    return fail("unexpected trailing tokens");
  }

  if (query.where.empty()) {
    return fail("empty graph pattern");
  }
  if (select_star || query.projection.empty()) {
    query.projection.clear();
    for (int v = 0; v < query.num_vars(); ++v) {
      query.projection.push_back(v);
    }
  }
  return query;
}

}  // namespace parowl::query
