#pragma once

#include <string>

#include "parowl/query/bgp.hpp"
#include "parowl/reason/equality.hpp"

namespace parowl::query {

/// Outcome of evaluating a query against a rewrite-mode (representative
/// space) store.  When `unsupported` is set the query shape cannot be
/// answered through the class map (see evaluate_with_equality) and
/// `results` is empty; callers fall back to a naive-mode store or report
/// `message` to the client.
struct EqualityEvalResult {
  ResultSet results;
  bool unsupported = false;
  std::string message;
  reason::ExpandStats stats;
};

/// Evaluate `query` over a store materialized under equality rewriting,
/// expanding answers through the frozen class map so the result is exactly
/// what evaluating over the naive closure would produce:
///
///  * constant subjects/objects are rewritten to their representative
///    before matching (predicates are never rewritten — pD* does not
///    propagate equality into predicate position);
///  * each solution's variables fan out over their class: subject-position
///    variables over resource members, object-only variables over resource
///    members plus literal partners, predicate-position variables not at
///    all;
///  * DISTINCT is applied to the expanded rows (it commutes with
///    expansion); LIMIT is applied after expansion.  Non-projected
///    variables are expanded too, so duplicate multiplicities match the
///    naive closure; under DISTINCT their expansion is skipped
///    (multiplicity is dropped anyway).
///
/// Unsupported shapes (rejected, never silently wrong):
///  * an atom whose predicate is owl:sameAs — the rewritten store holds no
///    sameAs triples and regenerating the clique inside a join is a
///    different query plan, out of scope;
///  * a variable used in predicate position AND in subject/object position
///    — members of a class used as a predicate cannot be recovered from
///    representative space (the eq_conflicts caveat);
///  * a constant object that is an attached literal partner — canonical
///    triples carry the class representative, not the literal.
[[nodiscard]] EqualityEvalResult evaluate_with_equality(
    const rdf::TripleStore& store, const SelectQuery& query,
    const reason::EqualityManager& eq, rdf::TermId same_as);

/// The split form of evaluate_with_equality, for callers whose matching
/// runs elsewhere (the distributed router): rewrite_for_equality runs the
/// same shape checks and constant rewriting, but returns a *widened* query
/// — every variable projected, DISTINCT and LIMIT stripped — because both
/// must apply to expanded rows, not representative-space rows, and
/// expansion needs the non-projected columns for exact multiplicities.
/// Returns nullopt (with `*message` set) for the unsupported shapes above.
[[nodiscard]] std::optional<SelectQuery> rewrite_for_equality(
    const SelectQuery& query, const reason::EqualityManager& eq,
    rdf::TermId same_as, std::string* message);

/// Expand the full-width representative-space rows the widened query
/// produced and re-apply `original`'s projection, DISTINCT, and LIMIT.
/// `rep_rows` must have one column per variable of `original`, in variable
/// order (what evaluating rewrite_for_equality's result yields).
[[nodiscard]] EqualityEvalResult expand_equality_results(
    const SelectQuery& original, const ResultSet& rep_rows,
    const reason::EqualityManager& eq);

}  // namespace parowl::query
