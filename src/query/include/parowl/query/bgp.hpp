#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "parowl/rdf/triple_store.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::query {

/// A SELECT query over one basic graph pattern (BGP): conjunctive triple
/// patterns sharing variables, with projection, DISTINCT, and LIMIT.
/// This is the query layer a materialized knowledge base is built for —
/// after reasoning, plain BGP matching answers OWL queries with no runtime
/// inference.
struct SelectQuery {
  std::vector<rules::Atom> where;          // the BGP
  std::vector<std::string> variable_names; // index = variable id
  std::vector<int> projection;             // variable ids to return
  bool distinct = false;
  std::optional<std::size_t> limit;

  [[nodiscard]] int num_vars() const {
    return static_cast<int>(variable_names.size());
  }
};

/// A table of query solutions (columns parallel to SelectQuery.projection).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<rdf::TermId>> rows;

  [[nodiscard]] std::size_t size() const { return rows.size(); }
};

/// Enumerate all solutions of the BGP over `store`, invoking `fn` with each
/// complete binding.  Join order is chosen greedily by bound-position count
/// (the same heuristic as the forward engine).  Returns the number of
/// solutions visited.
std::size_t solve_bgp(const rdf::TripleStore& store,
                      std::span<const rules::Atom> bgp, int num_vars,
                      const std::function<void(const rules::Binding&)>& fn);

/// Evaluate a SELECT query to a result table.
[[nodiscard]] ResultSet evaluate(const rdf::TripleStore& store,
                                 const SelectQuery& query);

/// Render a result set as aligned text (variable headers, lexical values).
[[nodiscard]] std::string to_text(const ResultSet& results,
                                  const rdf::Dictionary& dict);

}  // namespace parowl::query
