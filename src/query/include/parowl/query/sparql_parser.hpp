#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "parowl/query/bgp.hpp"
#include "parowl/rdf/dictionary.hpp"

namespace parowl::query {

/// Parser for the SPARQL subset the BGP engine evaluates:
///
///   PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
///   SELECT DISTINCT ?x ?d
///   WHERE { ?x a ub:Professor . ?x ub:worksFor ?d }
///   LIMIT 10
///
/// Supported: PREFIX, SELECT [DISTINCT] (?vars... | *), WHERE with a single
/// basic graph pattern ('.'-separated triple patterns, `a` as rdf:type,
/// IRIs, prefixed names, quoted literals), LIMIT.  Keywords are
/// case-insensitive.
class SparqlParser {
 public:
  explicit SparqlParser(rdf::Dictionary& dict);

  /// Register a namespace prefix usable by all subsequent queries.
  void add_prefix(std::string name, std::string iri);

  /// Parse one query; returns std::nullopt and sets *error on failure.
  std::optional<SelectQuery> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  rdf::Dictionary& dict_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace parowl::query
