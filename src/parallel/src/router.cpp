#include "parowl/parallel/router.hpp"

#include <algorithm>

namespace parowl::parallel {

void OwnerRouter::route(const rdf::Triple& t, std::uint32_t self,
                        std::vector<std::uint32_t>& out) const {
  std::uint32_t first = self;
  if (const auto it = owners_.find(t.s); it != owners_.end()) {
    if (it->second != self) {
      out.push_back(it->second);
      first = it->second;
    }
  }
  if (const auto it = owners_.find(t.o); it != owners_.end()) {
    if (it->second != self && it->second != first) {
      out.push_back(it->second);
    }
  }
}

bool atom_matches_tuple(const rules::Atom& atom, const rdf::Triple& t) {
  rules::Binding binding{};
  return rules::bind_atom(atom, t, binding);
}

RuleMatchRouter::RuleMatchRouter(
    const std::vector<rules::RuleSet>& partition_rules) {
  body_atoms_.resize(partition_rules.size());
  for (std::size_t p = 0; p < partition_rules.size(); ++p) {
    for (const rules::Rule& r : partition_rules[p].rules()) {
      for (const rules::Atom& a : r.body) {
        body_atoms_[p].push_back(a);
      }
    }
  }
}

void RuleMatchRouter::route(const rdf::Triple& t, std::uint32_t self,
                            std::vector<std::uint32_t>& out) const {
  for (std::uint32_t p = 0; p < body_atoms_.size(); ++p) {
    if (p == self) {
      continue;
    }
    const bool triggers = std::ranges::any_of(
        body_atoms_[p],
        [&t](const rules::Atom& a) { return atom_matches_tuple(a, t); });
    if (triggers) {
      out.push_back(p);
    }
  }
}

HybridRouter::HybridRouter(partition::OwnerTable owners,
                           const std::vector<rules::RuleSet>& rule_parts)
    : owners_(std::move(owners)) {
  body_atoms_.resize(rule_parts.size());
  for (std::size_t j = 0; j < rule_parts.size(); ++j) {
    for (const rules::Rule& r : rule_parts[j].rules()) {
      for (const rules::Atom& a : r.body) {
        body_atoms_[j].push_back(a);
      }
    }
  }
}

void HybridRouter::route(const rdf::Triple& t, std::uint32_t self,
                         std::vector<std::uint32_t>& out) const {
  const auto num_rule_parts = static_cast<std::uint32_t>(body_atoms_.size());

  // Owning data partitions of the tuple's endpoints (at most two).
  std::uint32_t data_parts[2];
  std::size_t num_data = 0;
  if (const auto it = owners_.find(t.s); it != owners_.end()) {
    data_parts[num_data++] = it->second;
  }
  if (const auto it = owners_.find(t.o); it != owners_.end()) {
    if (num_data == 0 || data_parts[0] != it->second) {
      data_parts[num_data++] = it->second;
    }
  }

  for (std::uint32_t j = 0; j < num_rule_parts; ++j) {
    const bool triggers = std::ranges::any_of(
        body_atoms_[j],
        [&t](const rules::Atom& a) { return atom_matches_tuple(a, t); });
    if (!triggers) {
      continue;
    }
    for (std::size_t i = 0; i < num_data; ++i) {
      const std::uint32_t dest = data_parts[i] * num_rule_parts + j;
      if (dest != self) {
        out.push_back(dest);
      }
    }
  }
}

}  // namespace parowl::parallel
