#include "parowl/parallel/async_sim.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "parowl/obs/obs.hpp"

namespace parowl::parallel {
namespace {

/// A batch of tuples in flight, due at `arrival` (virtual seconds).
struct Delivery {
  double arrival = 0.0;
  std::uint32_t dest = 0;
  std::vector<rdf::Triple> tuples;
};

struct LaterArrival {
  bool operator()(const Delivery& a, const Delivery& b) const {
    return a.arrival > b.arrival;  // min-heap on arrival time
  }
};

}  // namespace

AsyncSimulator::AsyncSimulator(std::uint32_t num_partitions,
                               NetworkModel network, const FaultSpec* faults)
    : network_(network), faults_(faults) {
  workers_.reserve(num_partitions);
}

std::uint32_t AsyncSimulator::add_worker(rules::RuleSet rule_base,
                                         std::shared_ptr<const Router> router,
                                         WorkerOptions worker_options) {
  const auto id = static_cast<std::uint32_t>(workers_.size());
  workers_.push_back(std::make_unique<Worker>(id, std::move(rule_base),
                                              std::move(router),
                                              /*transport=*/nullptr,
                                              worker_options));
  return id;
}

void AsyncSimulator::load(std::uint32_t id,
                          std::span<const rdf::Triple> base) {
  workers_[id]->load(base);
}

AsyncResult AsyncSimulator::run() {
  AsyncResult result;
  result.workers.resize(workers_.size());

  std::priority_queue<Delivery, std::vector<Delivery>, LaterArrival> in_flight;
  // clock[w]: virtual time up to which worker w is busy.
  std::vector<double> clock(workers_.size(), 0.0);

  auto comm_delay = [this](std::size_t tuples) {
    return network_.latency_seconds +
           network_.bytes_per_tuple * static_cast<double>(tuples) /
               network_.bandwidth_bytes_per_sec;
  };

  // Ship one batch through the (possibly faulty) virtual network.  Drops
  // and corruptions are paid for in virtual time — a retransmission
  // timeout, plus for corruption the wasted delivery that the checksum
  // rejects on arrival — and retried with a bumped attempt, exactly
  // mirroring the round-based ack/retry protocol.
  std::uint64_t next_batch_id = 0;  // event order is deterministic
  auto ship = [&](std::uint32_t dest, const std::vector<rdf::Triple>& tuples,
                  double ready) {
    const double one_way = comm_delay(tuples.size());
    const std::uint64_t id = next_batch_id++;
    double t = ready;
    for (std::uint32_t attempt = 0;; ++attempt) {
      if (faults_ == nullptr || attempt >= faults_->max_faulty_attempts) {
        in_flight.push(Delivery{t + one_way, dest, tuples});
        return;
      }
      result.injected.attempts += 1;
      const std::uint64_t h = mix64(
          faults_->seed ^ mix64(id * 0x9e3779b97f4a7c15ULL + attempt));
      const double u = hash_unit(h);
      double edge = faults_->drop;
      if (u < edge) {
        // Vanished: sender times out (retransmission timeout modeled as
        // two one-way delays) and tries again.
        result.injected.drops += 1;
        result.retries += 1;
        result.retry_seconds += 2.0 * one_way;
        t += 2.0 * one_way;
        continue;
      }
      edge += faults_->duplicate;
      if (u < edge) {
        result.injected.duplicates += 1;
        in_flight.push(Delivery{t + one_way, dest, tuples});
        in_flight.push(Delivery{t + 2.0 * one_way, dest, tuples});
        return;
      }
      edge += faults_->corrupt;
      if (u < edge) {
        // Damaged in flight: the receiver's checksum rejects it on
        // arrival, so a full round trip is wasted before the retry.
        result.injected.corruptions += 1;
        result.retries += 1;
        result.retry_seconds += 3.0 * one_way;
        t += 3.0 * one_way;
        continue;
      }
      edge += faults_->delay;
      if (u < edge) {
        const std::uint32_t extra =
            1 + static_cast<std::uint32_t>(
                    mix64(h ^ 0xabcdef12345ULL) %
                    std::max(1u, faults_->max_delay_rounds));
        result.injected.delays += 1;
        in_flight.push(Delivery{t + (1.0 + extra) * one_way, dest, tuples});
        return;
      }
      in_flight.push(Delivery{t + one_way, dest, tuples});
      return;
    }
  };

  // Activation: run worker w's local closure at virtual time `start`,
  // advancing its clock and enqueueing the outgoing batches.
  auto activate = [&](std::uint32_t w, double start) {
    AsyncWorkerStats& ws = result.workers[w];
    double compute = 0.0;
    const std::vector<Outgoing> batches =
        workers_[w]->compute_local(&compute);
    ++ws.activations;
    ws.busy_seconds += compute;
    if (start > clock[w]) {
      result.wait_seconds += start - clock[w];  // worker sat idle
    }
    clock[w] = start + compute;
    ws.finish_time = clock[w];
    for (const Outgoing& batch : batches) {
      ws.sent_tuples += batch.tuples.size();
      ship(batch.dest, batch.tuples, clock[w]);
    }
  };

  // Time zero: every worker processes its base partition immediately.
  for (std::uint32_t w = 0; w < workers_.size(); ++w) {
    activate(w, 0.0);
  }

  // Event loop: deliver the earliest batch; the destination starts work at
  // max(arrival, its clock).  Batches that arrive while it is busy coalesce
  // into that same activation (they are absorbed before the closure runs).
  while (!in_flight.empty()) {
    Delivery d = in_flight.top();
    in_flight.pop();
    ++result.deliveries;

    const std::uint32_t w = d.dest;
    const double start = std::max(d.arrival, clock[w]);

    // Absorb this batch plus any other batch for w arriving before `start`.
    std::size_t fresh = workers_[w]->absorb(d.tuples);
    result.workers[w].received_tuples += d.tuples.size();
    while (!in_flight.empty() && in_flight.top().dest == w &&
           in_flight.top().arrival <= start) {
      const Delivery more = in_flight.top();
      in_flight.pop();
      ++result.deliveries;
      fresh += workers_[w]->absorb(more.tuples);
      result.workers[w].received_tuples += more.tuples.size();
    }
    if (fresh == 0) {
      continue;  // nothing new: the closure cannot change
    }
    activate(w, start);
  }

  for (std::uint32_t w = 0; w < workers_.size(); ++w) {
    result.simulated_seconds =
        std::max(result.simulated_seconds, result.workers[w].finish_time);
  }

  // Result-tuple union (same accounting as the round-based cluster).
  std::unordered_set<rdf::Triple, rdf::TripleHash> union_results;
  for (const auto& worker : workers_) {
    result.results_per_partition.push_back(worker->result_size());
    const auto& log = worker->store().triples();
    for (std::size_t i = worker->base_size(); i < log.size(); ++i) {
      union_results.insert(log[i]);
    }
  }
  result.union_results = union_results.size();
  // First-class idle metric, matching the async cluster executors.
  PAROWL_COUNT("parallel.idle_ns",
               static_cast<std::uint64_t>(result.wait_seconds * 1e9));
  return result;
}

}  // namespace parowl::parallel
