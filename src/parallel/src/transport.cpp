#include "parowl/parallel/transport.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "parowl/rdf/codec.hpp"
#include "parowl/util/log.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hash_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t triple_digest(const rdf::Triple& t) {
  return mix64((static_cast<std::uint64_t>(t.s) << 32) ^
               (static_cast<std::uint64_t>(t.p) << 16) ^ t.o);
}

std::uint64_t batch_checksum(std::span<const rdf::Triple> tuples) {
  std::uint64_t sum = 0;
  for (const rdf::Triple& t : tuples) {
    sum += triple_digest(t);  // wrapping sum: order-insensitive
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Transport base: shared stats and the tuple-level wrappers.

Transport::Transport(std::uint32_t num_partitions) : stats_(num_partitions) {}

CommStats Transport::stats(std::uint32_t partition) const {
  const std::scoped_lock lock(stats_mutex_);
  return stats_[partition];
}

void Transport::note_redelivery(std::uint32_t to) {
  const std::scoped_lock lock(stats_mutex_);
  stats_[to].redeliveries += 1;
}

void Transport::note_checksum_failure(std::uint32_t to) {
  const std::scoped_lock lock(stats_mutex_);
  stats_[to].checksum_failures += 1;
}

void Transport::send(std::uint32_t from, std::uint32_t to, std::uint32_t round,
                     std::span<const rdf::Triple> tuples) {
  Batch batch;
  batch.from = from;
  batch.to = to;
  batch.round = round;
  {
    const std::scoped_lock lock(stats_mutex_);
    batch.seq = wrapper_seq_[{from, to, round}]++;
  }
  batch.checksum = batch_checksum(tuples);
  batch.tuples.assign(tuples.begin(), tuples.end());
  send_batch(std::move(batch));
}

std::vector<rdf::Triple> Transport::receive(std::uint32_t to,
                                            std::uint32_t round) {
  std::vector<rdf::Triple> out;
  for (Batch& batch : receive_batches(to, round)) {
    if (!batch.intact || batch_checksum(batch.tuples) != batch.checksum) {
      note_checksum_failure(to);
      util::log_warn("transport: dropped corrupt batch from ", batch.from,
                     " to ", batch.to, " round ", batch.round);
      continue;
    }
    out.insert(out.end(), batch.tuples.begin(), batch.tuples.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// MemoryTransport

MemoryTransport::MemoryTransport(std::uint32_t num_partitions)
    : Transport(num_partitions) {}

void MemoryTransport::send_batch(Batch batch) {
  util::Stopwatch watch;
  const std::uint64_t bytes = batch.tuples.size() * sizeof(rdf::Triple);
  const std::uint32_t from = batch.from;
  const bool retry = batch.attempt > 0;
  {
    const std::scoped_lock lock(mutex_);
    mailboxes_[{batch.to, batch.round}].push_back(std::move(batch));
  }
  const std::scoped_lock lock(stats_mutex_);
  CommStats& s = stats_for(from);
  s.send_seconds += watch.elapsed_seconds();
  s.bytes_sent += bytes;
  s.messages_sent += 1;
  s.retries += retry ? 1 : 0;
}

std::vector<Batch> MemoryTransport::receive_batches(std::uint32_t to,
                                                    std::uint32_t round) {
  util::Stopwatch watch;
  std::vector<Batch> out;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = mailboxes_.find({to, round});
    if (it != mailboxes_.end()) {
      out = std::move(it->second);
      mailboxes_.erase(it);
    }
  }
  std::uint64_t bytes = 0;
  for (const Batch& b : out) {
    bytes += b.tuples.size() * sizeof(rdf::Triple);
  }
  const std::scoped_lock lock(stats_mutex_);
  CommStats& s = stats_for(to);
  s.recv_seconds += watch.elapsed_seconds();
  s.bytes_received += bytes;
  return out;
}

std::vector<Batch> MemoryTransport::receive_all(std::uint32_t to) {
  util::Stopwatch watch;
  std::vector<Batch> out;
  {
    const std::scoped_lock lock(mutex_);
    // Mailboxes are keyed (to, round); drain every round for `to`.
    for (auto it = mailboxes_.lower_bound({to, 0});
         it != mailboxes_.end() && it->first.first == to;) {
      out.insert(out.end(), std::make_move_iterator(it->second.begin()),
                 std::make_move_iterator(it->second.end()));
      it = mailboxes_.erase(it);
    }
  }
  std::uint64_t bytes = 0;
  for (const Batch& b : out) {
    bytes += b.tuples.size() * sizeof(rdf::Triple);
  }
  const std::scoped_lock lock(stats_mutex_);
  CommStats& s = stats_for(to);
  s.recv_seconds += watch.elapsed_seconds();
  s.bytes_received += bytes;
  return out;
}

std::size_t MemoryTransport::pending_batches() const {
  const std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, box] : mailboxes_) {
    n += box.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// FileTransport

namespace {

// Binary batch envelope: magic, varint identity fields, the sender's
// order-insensitive checksum, the envelope kind (plus the token payload
// for termination probes), then one codec triple block (which carries its
// own count and order-sensitive checksum).  PWB3 extends PWB2 with the
// kind byte the asynchronous executor needs.
constexpr char kBatchMagic[4] = {'P', 'W', 'B', '3'};

std::string encode_envelope(const Batch& batch) {
  std::string out;
  out.append(kBatchMagic, sizeof(kBatchMagic));
  rdf::codec::put_varint(out, batch.from);
  rdf::codec::put_varint(out, batch.to);
  rdf::codec::put_varint(out, batch.round);
  rdf::codec::put_varint(out, batch.seq);
  rdf::codec::put_varint(out, batch.attempt);
  rdf::codec::put_u64le(out, batch.checksum);
  rdf::codec::put_varint(out, static_cast<std::uint64_t>(batch.kind));
  if (batch.kind == BatchKind::kToken) {
    rdf::codec::put_varint(out, batch.token_epoch);
    rdf::codec::put_varint(out, rdf::codec::zigzag_encode(batch.token_count));
    rdf::codec::put_varint(out, batch.token_black ? 1 : 0);
  }
  rdf::codec::encode_block(batch.tuples, out);
  return out;
}

/// Decode a spool file into `batch` (to/round pre-set by the caller from
/// the scan context).  Any mismatch or damage clears `intact` — the
/// ack/retry layer then treats the envelope as a checksum failure.
void decode_envelope(std::string_view in, Batch& batch) {
  if (in.size() < sizeof(kBatchMagic) ||
      in.compare(0, sizeof(kBatchMagic),
                 std::string_view(kBatchMagic, sizeof(kBatchMagic))) != 0) {
    batch.intact = false;
    return;
  }
  in.remove_prefix(sizeof(kBatchMagic));
  std::uint64_t from = 0, to = 0, round = 0, seq = 0, attempt = 0, kind = 0;
  if (!rdf::codec::get_varint(in, from) || !rdf::codec::get_varint(in, to) ||
      !rdf::codec::get_varint(in, round) ||
      !rdf::codec::get_varint(in, seq) ||
      !rdf::codec::get_varint(in, attempt) ||
      !rdf::codec::get_u64le(in, batch.checksum) ||
      !rdf::codec::get_varint(in, kind) ||
      kind > static_cast<std::uint64_t>(BatchKind::kStealResult)) {
    batch.intact = false;
    return;
  }
  if (to != batch.to || round != batch.round) {
    batch.intact = false;  // header disagrees with the spool file name
    return;
  }
  batch.from = static_cast<std::uint32_t>(from);
  batch.seq = static_cast<std::uint32_t>(seq);
  batch.attempt = static_cast<std::uint32_t>(attempt);
  batch.kind = static_cast<BatchKind>(kind);
  if (batch.kind == BatchKind::kToken) {
    std::uint64_t epoch = 0, count = 0, black = 0;
    if (!rdf::codec::get_varint(in, epoch) ||
        !rdf::codec::get_varint(in, count) ||
        !rdf::codec::get_varint(in, black) || black > 1) {
      batch.intact = false;
      return;
    }
    batch.token_epoch = static_cast<std::uint32_t>(epoch);
    batch.token_count = rdf::codec::zigzag_decode(count);
    batch.token_black = black != 0;
  }
  if (!rdf::codec::decode_block(in, batch.tuples) || !in.empty()) {
    batch.intact = false;
  }
}

}  // namespace

FileTransport::FileTransport(std::filesystem::path spool_dir,
                             std::uint32_t num_partitions)
    : Transport(num_partitions), dir_(std::move(spool_dir)) {
  std::filesystem::create_directories(dir_);
}

FileTransport::~FileTransport() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);  // best-effort spool cleanup
}

std::filesystem::path FileTransport::batch_path(const Batch& batch) const {
  std::ostringstream name;
  name << "r" << batch.round << "_to" << batch.to << "_from" << batch.from
       << "_s" << batch.seq << "_a" << batch.attempt << ".batch";
  return dir_ / name.str();
}

void FileTransport::send_batch(Batch batch) {
  util::Stopwatch watch;
  const auto path = batch_path(batch);
  const auto tmp = std::filesystem::path(path.string() + ".tmp");
  const std::string encoded = encode_envelope(batch);
  const std::uint64_t bytes = encoded.size();  // true bytes-on-wire
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    out.flush();
  }
  // Atomic publish: a crash or a concurrent reader can never observe a
  // partially written batch file.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    util::log_warn("file transport: rename failed for ", path.string(), ": ",
                   ec.message());
  }

  const std::scoped_lock lock(stats_mutex_);
  CommStats& s = stats_for(batch.from);
  s.send_seconds += watch.elapsed_seconds();
  s.bytes_sent += bytes;
  s.messages_sent += 1;
  s.retries += batch.attempt > 0 ? 1 : 0;
}

std::vector<Batch> FileTransport::receive_batches(std::uint32_t to,
                                                  std::uint32_t round) {
  util::Stopwatch watch;
  std::vector<Batch> out;
  std::uint64_t bytes = 0;

  const std::string prefix =
      "r" + std::to_string(round) + "_to" + std::to_string(to) + "_";
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(prefix) && name.ends_with(".batch")) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // scan order is fs-dependent

  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      continue;
    }
    Batch batch;
    batch.to = to;
    batch.round = round;

    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string encoded = buffer.str();
    bytes += encoded.size();
    decode_envelope(encoded, batch);
    in.close();
    std::filesystem::remove(path, ec);  // consumed
    out.push_back(std::move(batch));
  }

  const std::scoped_lock lock(stats_mutex_);
  CommStats& s = stats_for(to);
  s.recv_seconds += watch.elapsed_seconds();
  s.bytes_received += bytes;
  return out;
}

std::vector<Batch> FileTransport::receive_all(std::uint32_t to) {
  util::Stopwatch watch;
  std::vector<Batch> out;
  std::uint64_t bytes = 0;

  // Async spool scan: match any round for this destination.  The round is
  // recovered from the "r<digits>_" filename prefix so decode_envelope can
  // validate the header against it exactly as the per-round scan does.
  const std::string to_marker = "_to" + std::to_string(to) + "_from";
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("r") && name.ends_with(".batch") &&
        name.find(to_marker) != std::string::npos) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // scan order is fs-dependent

  for (const auto& path : paths) {
    const std::string name = path.filename().string();
    std::uint32_t round = 0;
    bool round_ok = false;
    for (std::size_t i = 1; i < name.size() && name[i] != '_'; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        round_ok = false;
        break;
      }
      round = round * 10 + static_cast<std::uint32_t>(name[i] - '0');
      round_ok = true;
    }
    if (!round_ok) {
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      continue;
    }
    Batch batch;
    batch.to = to;
    batch.round = round;

    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string encoded = buffer.str();
    bytes += encoded.size();
    decode_envelope(encoded, batch);
    in.close();
    std::filesystem::remove(path, ec);  // consumed
    out.push_back(std::move(batch));
  }

  const std::scoped_lock lock(stats_mutex_);
  CommStats& s = stats_for(to);
  s.recv_seconds += watch.elapsed_seconds();
  s.bytes_received += bytes;
  return out;
}

// ---------------------------------------------------------------------------
// FaultyTransport

FaultyTransport::FaultyTransport(Transport& inner, FaultSpec spec)
    : Transport(inner.num_partitions()), inner_(inner), spec_(spec) {}

void FaultyTransport::send_batch(Batch batch) {
  // One hash per transmission drives every decision: replayable regardless
  // of thread interleaving, distinct across attempts.
  const std::uint64_t h =
      mix64(spec_.seed ^ mix64(batch.id() * 0x9e3779b97f4a7c15ULL +
                               batch.attempt));
  const double u = hash_unit(h);
  const bool may_fault = batch.attempt < spec_.max_faulty_attempts;

  {
    const std::scoped_lock lock(mutex_);
    log_.attempts += 1;
  }

  if (may_fault && hash_unit(mix64(h ^ 0x5bd1e995)) < spec_.reorder &&
      batch.tuples.size() > 1) {
    // Deterministic Fisher-Yates over the payload; harmless under set
    // semantics, and the order-insensitive checksum stays valid.
    std::uint64_t state = mix64(h ^ 0xda3e39cb94b95bdbULL);
    for (std::size_t i = batch.tuples.size() - 1; i > 0; --i) {
      state = mix64(state);
      std::swap(batch.tuples[i], batch.tuples[state % (i + 1)]);
    }
    const std::scoped_lock lock(mutex_);
    log_.reorders += 1;
  }

  double edge = spec_.drop;
  if (may_fault && u < edge) {
    const std::scoped_lock lock(mutex_);
    log_.drops += 1;
    return;  // the envelope vanishes; the sender will retry
  }
  edge += spec_.duplicate;
  if (may_fault && u < edge) {
    {
      const std::scoped_lock lock(mutex_);
      log_.duplicates += 1;
    }
    Batch copy = batch;
    inner_.send_batch(std::move(copy));
    inner_.send_batch(std::move(batch));
    return;
  }
  edge += spec_.corrupt;
  if (may_fault && u < edge && !batch.tuples.empty()) {
    {
      const std::scoped_lock lock(mutex_);
      log_.corruptions += 1;
    }
    // Torn-write style damage: lose the payload tail, keep the stale
    // checksum.  Always detectable (the digest sum changes).
    batch.tuples.pop_back();
    inner_.send_batch(std::move(batch));
    return;
  }
  edge += spec_.delay;
  if (may_fault && u < edge) {
    const std::uint32_t extra =
        1 + static_cast<std::uint32_t>(mix64(h ^ 0xabcdef12345ULL) %
                                       std::max(1u, spec_.max_delay_rounds));
    const std::scoped_lock lock(mutex_);
    log_.delays += 1;
    limbo_.push_back(Delayed{batch.round + extra, extra, std::move(batch)});
    return;
  }

  inner_.send_batch(std::move(batch));
}

std::vector<Batch> FaultyTransport::receive_batches(std::uint32_t to,
                                                    std::uint32_t round) {
  std::vector<Batch> out;
  {
    // Release delayed envelopes whose due round has come.
    const std::scoped_lock lock(mutex_);
    for (auto it = limbo_.begin(); it != limbo_.end();) {
      if (it->batch.to == to && it->due_round <= round) {
        out.push_back(std::move(it->batch));
        it = limbo_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<Batch> inner = inner_.receive_batches(to, round);
  out.insert(out.end(), std::make_move_iterator(inner.begin()),
             std::make_move_iterator(inner.end()));

  if (out.size() > 1) {
    const std::uint64_t h = mix64(spec_.seed ^
                                  mix64((static_cast<std::uint64_t>(to) << 32) ^
                                        round) ^
                                  out.size());
    if (hash_unit(h) < spec_.reorder) {
      std::uint64_t state = mix64(h ^ 0x2545f4914f6cdd1dULL);
      for (std::size_t i = out.size() - 1; i > 0; --i) {
        state = mix64(state);
        std::swap(out[i], out[state % (i + 1)]);
      }
      const std::scoped_lock lock(mutex_);
      log_.reorders += 1;
    }
  }
  return out;
}

std::vector<Batch> FaultyTransport::receive_all(std::uint32_t to) {
  std::vector<Batch> out;
  std::uint64_t poll = 0;
  {
    // No shared round exists in async mode, so delayed envelopes count
    // down `holds` once per destination poll instead of waiting on a due
    // round; release at zero.
    const std::scoped_lock lock(mutex_);
    poll = ++poll_counts_[to];
    for (auto it = limbo_.begin(); it != limbo_.end();) {
      if (it->batch.to == to && it->holds > 0) {
        it->holds -= 1;
      }
      if (it->batch.to == to && it->holds == 0) {
        out.push_back(std::move(it->batch));
        it = limbo_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<Batch> inner = inner_.receive_all(to);
  out.insert(out.end(), std::make_move_iterator(inner.begin()),
             std::make_move_iterator(inner.end()));

  if (out.size() > 1) {
    // Deterministic delivery shuffle keyed on the destination's poll count
    // (the async analogue of the per-round shuffle above).
    const std::uint64_t h =
        mix64(spec_.seed ^
              mix64((static_cast<std::uint64_t>(to) << 32) ^ poll) ^
              out.size());
    if (hash_unit(h) < spec_.reorder) {
      std::uint64_t state = mix64(h ^ 0x2545f4914f6cdd1dULL);
      for (std::size_t i = out.size() - 1; i > 0; --i) {
        state = mix64(state);
        std::swap(out[i], out[state % (i + 1)]);
      }
      const std::scoped_lock lock(mutex_);
      log_.reorders += 1;
    }
  }
  return out;
}

CommStats FaultyTransport::stats(std::uint32_t partition) const {
  // Traffic counters live on the inner transport; protocol verdicts
  // (redeliveries, checksum failures) are noted against the decorator the
  // workers talk to.  Merge both views.
  CommStats merged = inner_.stats(partition);
  merged.merge(Transport::stats(partition));
  return merged;
}

FaultLog FaultyTransport::injected_faults() const {
  const std::scoped_lock lock(mutex_);
  return log_;
}

std::size_t FaultyTransport::limbo_remaining() const {
  const std::scoped_lock lock(mutex_);
  return limbo_.size();
}

obs::FieldList fields(const CommStats& s) {
  return {
      {"send_seconds", s.send_seconds},
      {"recv_seconds", s.recv_seconds},
      {"bytes_sent", s.bytes_sent},
      {"bytes_received", s.bytes_received},
      {"messages_sent", s.messages_sent},
      {"retries", s.retries},
      {"redeliveries", s.redeliveries},
      {"checksum_failures", s.checksum_failures},
  };
}

obs::FieldList fields(const FaultLog& log) {
  return {
      {"attempts", log.attempts},
      {"drops", log.drops},
      {"duplicates", log.duplicates},
      {"corruptions", log.corruptions},
      {"delays", log.delays},
      {"reorders", log.reorders},
  };
}

}  // namespace parowl::parallel
