#include "parowl/parallel/transport.hpp"

#include <fstream>
#include <sstream>

#include "parowl/rdf/ntriples.hpp"
#include "parowl/util/log.hpp"
#include "parowl/util/strings.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {

// ---------------------------------------------------------------------------
// MemoryTransport

MemoryTransport::MemoryTransport(std::uint32_t num_partitions)
    : stats_(num_partitions) {}

void MemoryTransport::send(std::uint32_t from, std::uint32_t to,
                           std::uint32_t round,
                           std::span<const rdf::Triple> tuples) {
  util::Stopwatch watch;
  const std::scoped_lock lock(mutex_);
  auto& box = mailboxes_[{to, round}];
  box.insert(box.end(), tuples.begin(), tuples.end());
  CommStats& s = stats_[from];
  s.send_seconds += watch.elapsed_seconds();
  s.bytes_sent += tuples.size() * sizeof(rdf::Triple);
  s.messages_sent += 1;
}

std::vector<rdf::Triple> MemoryTransport::receive(std::uint32_t to,
                                                  std::uint32_t round) {
  util::Stopwatch watch;
  std::vector<rdf::Triple> out;
  const std::scoped_lock lock(mutex_);
  const auto it = mailboxes_.find({to, round});
  if (it != mailboxes_.end()) {
    out = std::move(it->second);
    mailboxes_.erase(it);
  }
  CommStats& s = stats_[to];
  s.recv_seconds += watch.elapsed_seconds();
  s.bytes_received += out.size() * sizeof(rdf::Triple);
  return out;
}

CommStats MemoryTransport::stats(std::uint32_t partition) const {
  const std::scoped_lock lock(mutex_);
  return stats_[partition];
}

// ---------------------------------------------------------------------------
// FileTransport

namespace {

/// Find-only N-Triples term scan: parses one decorated term off `text` and
/// resolves it against the (read-only) dictionary.  Returns kAnyTerm when
/// the term is unknown — which indicates a bug upstream, since workers can
/// only derive triples over already-interned terms.
rdf::TermId scan_term(std::string_view& text, const rdf::Dictionary& dict) {
  text = util::trim(text);
  if (text.empty()) {
    return rdf::kAnyTerm;
  }
  if (text.front() == '<') {
    const auto end = text.find('>');
    if (end == std::string_view::npos) {
      return rdf::kAnyTerm;
    }
    const auto iri = text.substr(1, end - 1);
    text.remove_prefix(end + 1);
    return dict.find(iri, rdf::TermKind::kIri);
  }
  if (text.front() == '_' && text.size() > 2 && text[1] == ':') {
    std::size_t end = 2;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t') {
      ++end;
    }
    const auto label = text.substr(2, end - 2);
    text.remove_prefix(end);
    return dict.find(label, rdf::TermKind::kBlank);
  }
  if (text.front() == '"') {
    std::size_t end = 1;
    while (end < text.size()) {
      if (text[end] == '\\') {
        end += 2;
        continue;
      }
      if (text[end] == '"') {
        break;
      }
      ++end;
    }
    if (end >= text.size()) {
      return rdf::kAnyTerm;
    }
    std::size_t tail = end + 1;
    while (tail < text.size() && text[tail] != ' ' && text[tail] != '\t') {
      ++tail;
    }
    const auto lit = text.substr(0, tail);
    text.remove_prefix(tail);
    return dict.find(lit, rdf::TermKind::kLiteral);
  }
  return rdf::kAnyTerm;
}

}  // namespace

FileTransport::FileTransport(std::filesystem::path spool_dir,
                             const rdf::Dictionary& dict,
                             std::uint32_t num_partitions)
    : dir_(std::move(spool_dir)), dict_(dict), stats_(num_partitions) {
  std::filesystem::create_directories(dir_);
}

FileTransport::~FileTransport() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);  // best-effort spool cleanup
}

std::filesystem::path FileTransport::batch_path(std::uint32_t from,
                                                std::uint32_t to,
                                                std::uint32_t round) const {
  std::ostringstream name;
  name << "round" << round << "_from" << from << "_to" << to << ".nt";
  return dir_ / name.str();
}

void FileTransport::send(std::uint32_t from, std::uint32_t to,
                         std::uint32_t round,
                         std::span<const rdf::Triple> tuples) {
  util::Stopwatch watch;
  const auto path = batch_path(from, to, round);
  std::uint64_t bytes = 0;
  {
    std::ofstream out(path, std::ios::app);  // append: several sends allowed
    for (const rdf::Triple& t : tuples) {
      const std::string line = rdf::to_ntriples(t, dict_);
      out << line << '\n';
      bytes += line.size() + 1;
    }
  }
  const std::scoped_lock lock(mutex_);
  CommStats& s = stats_[from];
  s.send_seconds += watch.elapsed_seconds();
  s.bytes_sent += bytes;
  s.messages_sent += 1;
}

std::vector<rdf::Triple> FileTransport::receive(std::uint32_t to,
                                                std::uint32_t round) {
  util::Stopwatch watch;
  std::vector<rdf::Triple> out;
  std::uint64_t bytes = 0;

  for (std::uint32_t from = 0; from < stats_.size(); ++from) {
    const auto path = batch_path(from, to, round);
    std::ifstream in(path);
    if (!in) {
      continue;
    }
    std::string line;
    while (std::getline(in, line)) {
      bytes += line.size() + 1;
      std::string_view rest = line;
      rdf::Triple t;
      t.s = scan_term(rest, dict_);
      t.p = scan_term(rest, dict_);
      t.o = scan_term(rest, dict_);
      if (t.s == rdf::kAnyTerm || t.p == rdf::kAnyTerm ||
          t.o == rdf::kAnyTerm) {
        util::log_warn("file transport: dropped unparsable line: ", line);
        continue;
      }
      out.push_back(t);
    }
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);  // consumed
  }

  const std::scoped_lock lock(mutex_);
  CommStats& s = stats_[to];
  s.recv_seconds += watch.elapsed_seconds();
  s.bytes_received += bytes;
  return out;
}

CommStats FileTransport::stats(std::uint32_t partition) const {
  const std::scoped_lock lock(mutex_);
  return stats_[partition];
}

}  // namespace parowl::parallel
