#include "parowl/parallel/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <thread>
#include <unordered_set>

#include "parowl/util/log.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {

Cluster::Cluster(Transport& transport, ClusterOptions options)
    : transport_(transport), options_(options) {
  if (transport_.name() == "file") {
    // File IPC: the measured read/write/parse time *is* the communication
    // cost, as in the paper's shared-filesystem implementation.
    options_.network.use_measured_io = true;
  }
}

std::uint32_t Cluster::add_worker(rules::RuleSet rule_base,
                                  std::shared_ptr<const Router> router,
                                  WorkerOptions worker_options) {
  const auto id = static_cast<std::uint32_t>(workers_.size());
  workers_.push_back(std::make_unique<Worker>(
      id, std::move(rule_base), std::move(router), &transport_,
      worker_options));
  return id;
}

void Cluster::load(std::uint32_t id, std::span<const rdf::Triple> base) {
  workers_[id]->load(base);
}

ClusterResult Cluster::run() {
  assert(options_.mode != ExecutionMode::kAsyncSimulated &&
         "async mode is handled by AsyncSimulator, not Cluster");
  return options_.mode == ExecutionMode::kSequentialSimulated
             ? run_sequential()
             : run_threaded();
}

ClusterResult Cluster::run_sequential() {
  util::Stopwatch wall;
  ClusterResult result;

  for (std::uint32_t round = 0; round < options_.max_rounds; ++round) {
    std::size_t total_sent = 0;
    for (auto& worker : workers_) {
      total_sent += worker->compute_and_send(round);
    }
    result.rounds = round + 1;
    if (total_sent == 0) {
      break;  // quiescent: nothing in transit anywhere
    }
    for (auto& worker : workers_) {
      worker->receive_and_aggregate(round);
    }
  }

  result.wall_seconds = wall.elapsed_seconds();
  finalize(result);
  return result;
}

ClusterResult Cluster::run_threaded() {
  util::Stopwatch wall;
  ClusterResult result;

  const auto n = static_cast<std::ptrdiff_t>(workers_.size());
  std::atomic<std::size_t> round_sent{0};
  std::atomic<bool> done{false};
  std::atomic<std::uint32_t> rounds_executed{0};

  // Completion step of the post-compute barrier: decide termination for
  // the round everyone just finished.
  auto on_compute_done = [&]() noexcept {
    rounds_executed.fetch_add(1);
    if (round_sent.exchange(0) == 0) {
      done.store(true);
    }
  };
  std::barrier compute_barrier(n, on_compute_done);
  std::barrier receive_barrier(n);

  {
    std::vector<std::jthread> threads;
    threads.reserve(workers_.size());
    for (auto& worker_ptr : workers_) {
      threads.emplace_back([&, worker = worker_ptr.get()]() {
        for (std::uint32_t round = 0; round < options_.max_rounds; ++round) {
          const std::size_t sent = worker->compute_and_send(round);
          round_sent.fetch_add(sent);

          util::Stopwatch sync_watch;
          compute_barrier.arrive_and_wait();
          worker->mutable_rounds()[round].sync_seconds +=
              sync_watch.elapsed_seconds();

          if (done.load()) {
            return;
          }
          worker->receive_and_aggregate(round);
          receive_barrier.arrive_and_wait();
        }
      });
    }
  }  // jthreads join

  result.rounds = rounds_executed.load();
  result.wall_seconds = wall.elapsed_seconds();
  finalize(result);
  return result;
}

void Cluster::finalize(ClusterResult& result) {
  const NetworkModel& net = options_.network;

  // Per-round maxima and the simulated makespan.
  result.breakdown.assign(result.rounds, RoundBreakdown{});
  for (std::uint32_t round = 0; round < result.rounds; ++round) {
    RoundBreakdown& rb = result.breakdown[round];
    double compute_max = 0.0;
    for (const auto& worker : workers_) {
      if (worker->rounds().size() <= round) {
        continue;
      }
      const RoundStats& rs = worker->rounds()[round];
      rb.reason_max = std::max(rb.reason_max, rs.reason_seconds);
      rb.aggregate_max = std::max(rb.aggregate_max, rs.aggregate_seconds);
      rb.tuples_exchanged += rs.sent_tuples;

      const double comm =
          net.use_measured_io
              ? rs.io_seconds
              : net.latency_seconds * static_cast<double>(rs.sent_messages) +
                    net.bytes_per_tuple *
                        static_cast<double>(rs.sent_tuples +
                                            rs.received_tuples) /
                        net.bandwidth_bytes_per_sec;
      rb.io_max = std::max(rb.io_max, comm);
      compute_max = std::max(
          compute_max, rs.reason_seconds + rs.aggregate_seconds + comm);
    }
    // In the simulated mode, a worker's synchronization wait is the gap to
    // the slowest worker of the round.
    if (options_.mode == ExecutionMode::kSequentialSimulated) {
      for (const auto& worker : workers_) {
        if (worker->rounds().size() <= round) {
          continue;
        }
        RoundStats& rs = worker->mutable_rounds()[round];
        const double comm =
            net.use_measured_io
                ? rs.io_seconds
                : net.latency_seconds *
                          static_cast<double>(rs.sent_messages) +
                      net.bytes_per_tuple *
                          static_cast<double>(rs.sent_tuples +
                                              rs.received_tuples) /
                          net.bandwidth_bytes_per_sec;
        const double own =
            rs.reason_seconds + rs.aggregate_seconds + comm;
        rs.sync_seconds = std::max(0.0, compute_max - own);
      }
    }
    for (const auto& worker : workers_) {
      if (worker->rounds().size() > round) {
        rb.sync_max = std::max(rb.sync_max,
                               worker->rounds()[round].sync_seconds);
      }
    }

    result.reason_seconds += rb.reason_max;
    result.io_seconds += rb.io_max;
    result.sync_seconds += rb.sync_max;
    result.aggregate_seconds += rb.aggregate_max;
    result.simulated_seconds += rb.reason_max + rb.aggregate_max + rb.io_max;
  }

  // Per-worker reasoning totals (for predictive rebalancing) and the
  // result-tuple union for the OR metric.
  std::unordered_set<rdf::Triple, rdf::TripleHash> union_results;
  for (const auto& worker : workers_) {
    double reason_total = 0.0;
    for (const RoundStats& rs : worker->rounds()) {
      reason_total += rs.reason_seconds;
    }
    result.reason_seconds_per_worker.push_back(reason_total);
    result.results_per_partition.push_back(worker->result_size());
    const auto& log = worker->store().triples();
    for (std::size_t i = worker->base_size(); i < log.size(); ++i) {
      union_results.insert(log[i]);
    }
  }
  result.union_results = union_results.size();
}

}  // namespace parowl::parallel
