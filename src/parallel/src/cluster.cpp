#include "parowl/parallel/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "parowl/obs/obs.hpp"
#include "parowl/util/log.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {

namespace fs = std::filesystem;

namespace {

fs::path checkpoint_path(const std::string& dir, std::uint32_t worker,
                         std::uint32_t round) {
  return fs::path(dir) / ("w" + std::to_string(worker) + "_r" +
                          std::to_string(round) + ".ckpt");
}

}  // namespace

Cluster::Cluster(Transport& transport, ClusterOptions options)
    : transport_(transport), options_(std::move(options)) {
  obs::configure(options_.obs);
  if (transport_.name().find("file") != std::string::npos) {
    // File IPC: the measured read/write/parse time *is* the communication
    // cost, as in the paper's shared-filesystem implementation.
    options_.network.use_measured_io = true;
  }
  if (!options_.checkpoint.dir.empty()) {
    fs::create_directories(options_.checkpoint.dir);
  }
}

std::uint32_t Cluster::add_worker(rules::RuleSet rule_base,
                                  std::shared_ptr<const Router> router,
                                  WorkerOptions worker_options) {
  const auto id = static_cast<std::uint32_t>(workers_.size());
  workers_.push_back(std::make_unique<Worker>(
      id, std::move(rule_base), std::move(router), &transport_,
      worker_options));
  return id;
}

void Cluster::load(std::uint32_t id, std::span<const rdf::Triple> base) {
  workers_[id]->load(base);
}

bool Cluster::checkpoint_due(std::uint32_t round) const {
  return !options_.checkpoint.dir.empty() &&
         round % std::max<std::uint32_t>(1, options_.checkpoint.interval) == 0;
}

void Cluster::checkpoint_worker(Worker& worker, std::uint32_t round) {
  obs::Span span("parallel.checkpoint",
                 {{"round", round}, {"worker", worker.id()}},
                 100 + worker.id());
  const std::string& dir = options_.checkpoint.dir;
  const fs::path final_path = checkpoint_path(dir, worker.id(), round);
  const fs::path tmp_path = final_path.string() + ".tmp";
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      worker.save_checkpoint(out, round);
      if (!out) {
        throw std::runtime_error("write failed");
      }
    }
    fs::rename(tmp_path, final_path);  // atomic: never a torn final file
  } catch (const std::exception& e) {
    util::log_warn("checkpoint for worker ", worker.id(), " round ", round,
                   " failed: ", e.what());
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return;
  }

  const std::uint32_t retain = options_.checkpoint.retain;
  if (retain > 0) {
    const std::uint64_t horizon =
        static_cast<std::uint64_t>(retain) *
        std::max<std::uint32_t>(1, options_.checkpoint.interval);
    if (round >= horizon) {
      std::error_code ec;
      fs::remove(checkpoint_path(dir, worker.id(),
                                 static_cast<std::uint32_t>(round - horizon)),
                 ec);
    }
  }
}

std::int64_t Cluster::restore_from_checkpoints() {
  const std::string& dir = options_.checkpoint.dir;
  if (dir.empty() || workers_.empty()) {
    throw SimulatedCrash("no checkpoint directory configured");
  }

  // Candidate rounds: any round worker 0 has a file for, newest first.
  std::vector<std::uint32_t> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("w0_r", 0) != 0 || !name.ends_with(".ckpt")) {
      continue;
    }
    try {
      candidates.push_back(static_cast<std::uint32_t>(
          std::stoul(name.substr(4, name.size() - 4 - 5))));
    } catch (const std::exception&) {
      continue;
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());

  for (const std::uint32_t round : candidates) {
    bool all_ok = true;
    for (auto& worker : workers_) {
      std::ifstream in(checkpoint_path(dir, worker->id(), round),
                       std::ios::binary);
      std::uint32_t loaded_round = 0;
      std::string error;
      if (!in || !worker->load_checkpoint(in, &loaded_round, &error) ||
          loaded_round != round) {
        util::log_warn("checkpoint round ", round, " unusable (worker ",
                       worker->id(), "): ",
                       error.empty() ? "missing file" : error,
                       " — trying an older round");
        all_ok = false;
        break;
      }
    }
    if (all_ok) {
      start_round_ = round + 1;
      return round;
    }
  }
  throw SimulatedCrash("no complete checkpoint round available");
}

ClusterResult Cluster::run() {
  assert(options_.mode != ExecutionMode::kAsyncSimulated &&
         "async mode is handled by AsyncSimulator, not Cluster");
  if (obs::Tracer::global().enabled()) {
    // Per-worker virtual tracks (100 + id, matching worker.cpp) so the
    // trace has one row per worker even in sequential-simulated mode.
    for (const auto& worker : workers_) {
      obs::Tracer::global().name_track(
          100 + worker->id(), "worker " + std::to_string(worker->id()));
    }
  }
  crash_armed_ = options_.fault_tolerance.crash_at_round >= 0 &&
                 options_.mode == ExecutionMode::kSequentialSimulated;
  try {
    return options_.mode == ExecutionMode::kSequentialSimulated
               ? run_sequential()
               : run_threaded();
  } catch (const SimulatedCrash&) {
    // The killed worker restarts from its last checkpoint; restoring every
    // worker to the same consistent cut is equivalent, since at a round
    // boundary the survivors' checkpoints equal their live state.
    const std::int64_t round = restore_from_checkpoints();
    recovered_ = true;
    recovered_from_round_ = round;
    util::log_warn("recovered from crash: resuming at round ", round + 1);
    return options_.mode == ExecutionMode::kSequentialSimulated
               ? run_sequential()
               : run_threaded();
  }
}

void Cluster::deliver_round_sequential(std::uint32_t round) {
  PAROWL_SPAN("parallel.deliver", {{"round", round}});
  const FaultToleranceOptions& ft = options_.fault_tolerance;
  ack_board_.clear();

  for (auto& worker : workers_) {
    worker->collect(round, &ack_board_);
  }
  double backoff = ft.backoff_base_seconds;
  for (std::uint32_t retry = 0;; ++retry) {
    std::size_t resent = 0;
    for (auto& worker : workers_) {
      resent += worker->retransmit_unacked(round, ack_board_);
    }
    if (resent == 0) {
      break;  // every envelope of the round is acknowledged
    }
    if (retry >= ft.max_retries) {
      std::ostringstream msg;
      msg << "round " << round << ": " << resent
          << " batches undelivered after " << ft.max_retries << " retries";
      throw DeliveryFailure(msg.str());
    }
    backoff_seconds_ += backoff;  // virtual: charged, not slept
    backoff *= ft.backoff_multiplier;
    for (auto& worker : workers_) {
      worker->collect(round, &ack_board_);
    }
  }
  for (auto& worker : workers_) {
    worker->aggregate_round(round);
  }
}

ClusterResult Cluster::run_sequential() {
  util::Stopwatch wall;
  ClusterResult result;
  const FaultToleranceOptions& ft = options_.fault_tolerance;

  for (std::uint32_t round = start_round_; round < options_.max_rounds;
       ++round) {
    std::size_t total_sent = 0;
    for (auto& worker : workers_) {
      if (crash_armed_ &&
          static_cast<std::int64_t>(round) == ft.crash_at_round &&
          worker->id() == ft.crash_worker) {
        crash_armed_ = false;  // the restarted worker does not die again
        throw SimulatedCrash("worker " + std::to_string(worker->id()) +
                             " killed at round " + std::to_string(round));
      }
      total_sent += worker->compute_and_send(round);
    }
    result.rounds = round + 1;
    if (total_sent == 0) {
      break;  // quiescent: nothing in transit anywhere
    }
    deliver_round_sequential(round);
    if (checkpoint_due(round)) {
      for (auto& worker : workers_) {
        checkpoint_worker(*worker, round);
        ++checkpoints_written_;
      }
    }
  }

  result.wall_seconds = wall.elapsed_seconds();
  finalize(result);
  return result;
}

ClusterResult Cluster::run_threaded() {
  util::Stopwatch wall;
  ClusterResult result;
  const FaultToleranceOptions& ft = options_.fault_tolerance;

  const auto n = static_cast<std::ptrdiff_t>(workers_.size());
  std::atomic<std::size_t> round_sent{0};
  std::atomic<std::size_t> resent_total{0};
  std::atomic<bool> done{false};
  std::atomic<bool> delivery_done{false};
  std::atomic<bool> delivery_failed{false};
  std::atomic<std::uint32_t> rounds_executed{start_round_};
  std::atomic<std::uint32_t> delivery_retries{0};

  // Completion step of the post-compute barrier: decide termination for
  // the round everyone just finished, and reset the delivery loop.
  auto on_compute_done = [&]() noexcept {
    rounds_executed.fetch_add(1);
    if (round_sent.exchange(0) == 0) {
      done.store(true);
    }
    ack_board_.clear();
    delivery_retries.store(0);
    delivery_done.store(false);
  };
  // Completion step after each retransmission sweep: the round's delivery
  // is complete when nobody had anything left to resend.
  auto on_resend_done = [&]() noexcept {
    if (resent_total.exchange(0) == 0) {
      delivery_done.store(true);
      return;
    }
    const std::uint32_t retry = delivery_retries.fetch_add(1);
    if (retry >= ft.max_retries) {
      delivery_failed.store(true);
    } else {
      backoff_seconds_ += ft.backoff_base_seconds *
                          std::pow(ft.backoff_multiplier, retry);
    }
  };
  std::barrier compute_barrier(n, on_compute_done);
  std::barrier collect_barrier(n);
  std::barrier resend_barrier(n, on_resend_done);
  std::barrier receive_barrier(n);
  std::atomic<std::uint64_t> ckpts{0};

  {
    std::vector<std::jthread> threads;
    threads.reserve(workers_.size());
    for (auto& worker_ptr : workers_) {
      threads.emplace_back([&, worker = worker_ptr.get()]() {
        for (std::uint32_t round = start_round_; round < options_.max_rounds;
             ++round) {
          const std::size_t sent = worker->compute_and_send(round);
          round_sent.fetch_add(sent);

          util::Stopwatch sync_watch;
          compute_barrier.arrive_and_wait();
          worker->mutable_rounds()[round].sync_seconds +=
              sync_watch.elapsed_seconds();

          if (done.load()) {
            return;
          }

          // Ack/retry delivery loop, in lockstep across threads: collect &
          // ack, barrier, retransmit what the board is missing, barrier —
          // until a sweep resends nothing.
          worker->collect(round, &ack_board_);
          while (true) {
            collect_barrier.arrive_and_wait();
            resent_total.fetch_add(
                worker->retransmit_unacked(round, ack_board_));
            resend_barrier.arrive_and_wait();
            if (delivery_done.load() || delivery_failed.load()) {
              break;
            }
            worker->collect(round, &ack_board_);
          }
          if (delivery_failed.load()) {
            return;
          }
          worker->aggregate_round(round);
          if (checkpoint_due(round)) {
            checkpoint_worker(*worker, round);
            ckpts.fetch_add(1);
          }
          receive_barrier.arrive_and_wait();
        }
      });
    }
  }  // jthreads join

  checkpoints_written_ += ckpts.load();
  if (delivery_failed.load()) {
    throw DeliveryFailure("round delivery exceeded max_retries");
  }

  result.rounds = rounds_executed.load();
  result.wall_seconds = wall.elapsed_seconds();
  finalize(result);
  return result;
}

void Cluster::finalize(ClusterResult& result) {
  const NetworkModel& net = options_.network;

  // Per-round maxima and the simulated makespan.
  result.breakdown.assign(result.rounds, RoundBreakdown{});
  for (std::uint32_t round = 0; round < result.rounds; ++round) {
    RoundBreakdown& rb = result.breakdown[round];
    double compute_max = 0.0;
    for (const auto& worker : workers_) {
      if (worker->rounds().size() <= round) {
        continue;
      }
      const RoundStats& rs = worker->rounds()[round];
      rb.reason_max = std::max(rb.reason_max, rs.reason_seconds);
      rb.aggregate_max = std::max(rb.aggregate_max, rs.aggregate_seconds);
      rb.tuples_exchanged += rs.sent_tuples;

      const double comm =
          net.use_measured_io
              ? rs.io_seconds
              : net.latency_seconds * static_cast<double>(rs.sent_messages) +
                    net.bytes_per_tuple *
                        static_cast<double>(rs.sent_tuples +
                                            rs.received_tuples) /
                        net.bandwidth_bytes_per_sec;
      rb.io_max = std::max(rb.io_max, comm);
      compute_max = std::max(
          compute_max, rs.reason_seconds + rs.aggregate_seconds + comm);
    }
    // In the simulated mode, a worker's synchronization wait is the gap to
    // the slowest worker of the round.
    if (options_.mode == ExecutionMode::kSequentialSimulated) {
      for (const auto& worker : workers_) {
        if (worker->rounds().size() <= round) {
          continue;
        }
        RoundStats& rs = worker->mutable_rounds()[round];
        const double comm =
            net.use_measured_io
                ? rs.io_seconds
                : net.latency_seconds *
                          static_cast<double>(rs.sent_messages) +
                      net.bytes_per_tuple *
                          static_cast<double>(rs.sent_tuples +
                                              rs.received_tuples) /
                          net.bandwidth_bytes_per_sec;
        const double own =
            rs.reason_seconds + rs.aggregate_seconds + comm;
        rs.sync_seconds = std::max(0.0, compute_max - own);
      }
    }
    for (const auto& worker : workers_) {
      if (worker->rounds().size() > round) {
        rb.sync_max = std::max(rb.sync_max,
                               worker->rounds()[round].sync_seconds);
      }
    }

    result.reason_seconds += rb.reason_max;
    result.io_seconds += rb.io_max;
    result.sync_seconds += rb.sync_max;
    result.aggregate_seconds += rb.aggregate_max;
    result.simulated_seconds += rb.reason_max + rb.aggregate_max + rb.io_max;
  }

  // Per-worker reasoning totals (for predictive rebalancing) and the
  // result-tuple union for the OR metric.
  std::unordered_set<rdf::Triple, rdf::TripleHash> union_results;
  for (const auto& worker : workers_) {
    double reason_total = 0.0;
    for (const RoundStats& rs : worker->rounds()) {
      reason_total += rs.reason_seconds;
    }
    result.reason_seconds_per_worker.push_back(reason_total);
    result.results_per_partition.push_back(worker->result_size());
    const auto& log = worker->store().triples();
    for (std::size_t i = worker->base_size(); i < log.size(); ++i) {
      union_results.insert(log[i]);
    }
  }
  result.union_results = union_results.size();

  // Fault-tolerance accounting.
  RunReport& rep = result.report;
  for (const auto& worker : workers_) {
    for (const RoundStats& rs : worker->rounds()) {
      rep.batches_sent += rs.sent_messages;
      rep.retransmissions += rs.retransmitted;
      rep.redeliveries += rs.redelivered;
      rep.checksum_failures += rs.corrupt_batches;
    }
  }
  rep.injected = transport_.injected_faults();
  rep.checkpoints_written = checkpoints_written_;
  rep.backoff_seconds = backoff_seconds_;
  rep.recovered = recovered_;
  rep.recovered_from_round = recovered_from_round_;
  result.simulated_seconds += backoff_seconds_;

  // Export the run's headline numbers into the global registry.
  obs::publish(rep, "parallel.run");
  auto& registry = obs::MetricsRegistry::global();
  registry.gauge("parallel.rounds").set(static_cast<double>(result.rounds));
  registry.gauge("parallel.reason_seconds").set(result.reason_seconds);
  registry.gauge("parallel.io_seconds").set(result.io_seconds);
  registry.gauge("parallel.sync_seconds").set(result.sync_seconds);
  registry.gauge("parallel.aggregate_seconds").set(result.aggregate_seconds);
  registry.gauge("parallel.simulated_seconds").set(result.simulated_seconds);
}

obs::FieldList fields(const RunReport& r) {
  obs::FieldList out = {
      {"batches_sent", r.batches_sent},
      {"retransmissions", r.retransmissions},
      {"redeliveries", r.redeliveries},
      {"checksum_failures", r.checksum_failures},
      {"checkpoints_written", r.checkpoints_written},
      {"backoff_seconds", r.backoff_seconds},
      {"recovered", r.recovered},
      {"recovered_from_round", static_cast<std::uint64_t>(
          r.recovered_from_round < 0 ? 0 : r.recovered_from_round)},
  };
  for (obs::Field& f : fields(r.injected)) {
    f.name.insert(0, "injected_");
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace parowl::parallel
