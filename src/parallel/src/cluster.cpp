#include "parowl/parallel/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "parowl/obs/obs.hpp"
#include "parowl/util/log.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {

namespace fs = std::filesystem;

namespace {

fs::path checkpoint_path(const std::string& dir, std::uint32_t worker,
                         std::uint32_t round) {
  return fs::path(dir) / ("w" + std::to_string(worker) + "_r" +
                          std::to_string(round) + ".ckpt");
}

/// Epoch gap applied after a crash recovery so post-restore termination
/// probes can never be confused with pre-crash ones still in flight.
/// Mirrors the send-sequence gap the worker applies on checkpoint load.
constexpr std::uint32_t kRecoveryEpochGap = 1u << 20;

/// Safety valve: consecutive full scheduler cycles in which *nothing*
/// happened anywhere (no arrival, no evaluation, no steal, no token hop,
/// no ack released) before the async executor declares a livelock.
constexpr std::uint32_t kAsyncStallLimit = 10000;

}  // namespace

Cluster::Cluster(Transport& transport, ClusterOptions options)
    : transport_(transport), options_(std::move(options)) {
  obs::configure(options_.obs);
  if (transport_.name().find("file") != std::string::npos) {
    // File IPC: the measured read/write/parse time *is* the communication
    // cost, as in the paper's shared-filesystem implementation.
    options_.network.use_measured_io = true;
  }
  if (!options_.checkpoint.dir.empty()) {
    fs::create_directories(options_.checkpoint.dir);
  }
}

std::uint32_t Cluster::add_worker(rules::RuleSet rule_base,
                                  std::shared_ptr<const Router> router,
                                  WorkerOptions worker_options) {
  const auto id = static_cast<std::uint32_t>(workers_.size());
  workers_.push_back(std::make_unique<Worker>(
      id, std::move(rule_base), std::move(router), &transport_,
      worker_options));
  return id;
}

void Cluster::load(std::uint32_t id, std::span<const rdf::Triple> base) {
  workers_[id]->load(base);
}

bool Cluster::checkpoint_due(std::uint32_t round) const {
  return !options_.checkpoint.dir.empty() &&
         round % std::max<std::uint32_t>(1, options_.checkpoint.interval) == 0;
}

void Cluster::checkpoint_worker(Worker& worker, std::uint32_t round) {
  obs::Span span("parallel.checkpoint",
                 {{"round", round}, {"worker", worker.id()}},
                 100 + worker.id());
  const std::string& dir = options_.checkpoint.dir;
  const fs::path final_path = checkpoint_path(dir, worker.id(), round);
  const fs::path tmp_path = final_path.string() + ".tmp";
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      worker.save_checkpoint(out, round);
      if (!out) {
        throw std::runtime_error("write failed");
      }
    }
    fs::rename(tmp_path, final_path);  // atomic: never a torn final file
  } catch (const std::exception& e) {
    util::log_warn("checkpoint for worker ", worker.id(), " round ", round,
                   " failed: ", e.what());
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return;
  }

  const std::uint32_t retain = options_.checkpoint.retain;
  if (retain > 0) {
    const std::uint64_t horizon =
        static_cast<std::uint64_t>(retain) *
        std::max<std::uint32_t>(1, options_.checkpoint.interval);
    if (round >= horizon) {
      std::error_code ec;
      fs::remove(checkpoint_path(dir, worker.id(),
                                 static_cast<std::uint32_t>(round - horizon)),
                 ec);
    }
  }
}

std::int64_t Cluster::restore_from_checkpoints() {
  const std::string& dir = options_.checkpoint.dir;
  if (dir.empty() || workers_.empty()) {
    throw SimulatedCrash("no checkpoint directory configured");
  }

  // Candidate rounds: any round worker 0 has a file for, newest first.
  std::vector<std::uint32_t> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("w0_r", 0) != 0 || !name.ends_with(".ckpt")) {
      continue;
    }
    try {
      candidates.push_back(static_cast<std::uint32_t>(
          std::stoul(name.substr(4, name.size() - 4 - 5))));
    } catch (const std::exception&) {
      continue;
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());

  for (const std::uint32_t round : candidates) {
    bool all_ok = true;
    for (auto& worker : workers_) {
      std::ifstream in(checkpoint_path(dir, worker->id(), round),
                       std::ios::binary);
      std::uint32_t loaded_round = 0;
      std::string error;
      if (!in || !worker->load_checkpoint(in, &loaded_round, &error) ||
          loaded_round != round) {
        util::log_warn("checkpoint round ", round, " unusable (worker ",
                       worker->id(), "): ",
                       error.empty() ? "missing file" : error,
                       " — trying an older round");
        all_ok = false;
        break;
      }
    }
    if (all_ok) {
      start_round_ = round + 1;
      return round;
    }
  }
  throw SimulatedCrash("no complete checkpoint round available");
}

ClusterResult Cluster::run() {
  assert(options_.mode != ExecutionMode::kAsyncSimulated &&
         "async mode is handled by AsyncSimulator, not Cluster");
  if (obs::Tracer::global().enabled()) {
    // Per-worker virtual tracks (100 + id, matching worker.cpp) so the
    // trace has one row per worker even in sequential-simulated mode.
    for (const auto& worker : workers_) {
      obs::Tracer::global().name_track(
          100 + worker->id(), "worker " + std::to_string(worker->id()));
    }
  }
  crash_armed_ = options_.fault_tolerance.crash_at_round >= 0 &&
                 (options_.mode == ExecutionMode::kSequentialSimulated ||
                  options_.mode == ExecutionMode::kAsync);
  const auto dispatch = [this]() {
    switch (options_.mode) {
      case ExecutionMode::kAsync:
        return run_async();
      case ExecutionMode::kAsyncThreaded:
        return run_async_threaded();
      case ExecutionMode::kThreaded:
        return run_threaded();
      default:
        return run_sequential();
    }
  };
  try {
    return dispatch();
  } catch (const SimulatedCrash&) {
    // The killed worker restarts from its last checkpoint; restoring every
    // worker to the same consistent cut is equivalent, since at a round
    // boundary (or termination-token epoch, in async mode) the survivors'
    // checkpoints plus the resent outboxes reconstruct the cluster state.
    const std::int64_t round = restore_from_checkpoints();
    recovered_ = true;
    recovered_from_round_ = round;
    util::log_warn("recovered from crash: resuming at round ", round + 1);
    return dispatch();
  }
}

void Cluster::deliver_round_sequential(std::uint32_t round) {
  PAROWL_SPAN("parallel.deliver", {{"round", round}});
  const FaultToleranceOptions& ft = options_.fault_tolerance;
  ack_board_.clear();

  for (auto& worker : workers_) {
    worker->collect(round, &ack_board_);
  }
  double backoff = ft.backoff_base_seconds;
  for (std::uint32_t retry = 0;; ++retry) {
    std::size_t resent = 0;
    for (auto& worker : workers_) {
      resent += worker->retransmit_unacked(round, ack_board_);
    }
    if (resent == 0) {
      break;  // every envelope of the round is acknowledged
    }
    if (retry >= ft.max_retries) {
      std::ostringstream msg;
      msg << "round " << round << ": " << resent
          << " batches undelivered after " << ft.max_retries << " retries";
      throw DeliveryFailure(msg.str());
    }
    backoff_seconds_ += backoff;  // virtual: charged, not slept
    backoff *= ft.backoff_multiplier;
    for (auto& worker : workers_) {
      worker->collect(round, &ack_board_);
    }
  }
  for (auto& worker : workers_) {
    worker->aggregate_round(round);
  }
}

ClusterResult Cluster::run_sequential() {
  util::Stopwatch wall;
  ClusterResult result;
  const FaultToleranceOptions& ft = options_.fault_tolerance;

  for (std::uint32_t round = start_round_; round < options_.max_rounds;
       ++round) {
    std::size_t total_sent = 0;
    for (auto& worker : workers_) {
      if (crash_armed_ &&
          static_cast<std::int64_t>(round) == ft.crash_at_round &&
          worker->id() == ft.crash_worker) {
        crash_armed_ = false;  // the restarted worker does not die again
        throw SimulatedCrash("worker " + std::to_string(worker->id()) +
                             " killed at round " + std::to_string(round));
      }
      total_sent += worker->compute_and_send(round);
    }
    result.rounds = round + 1;
    if (total_sent == 0) {
      break;  // quiescent: nothing in transit anywhere
    }
    deliver_round_sequential(round);
    if (checkpoint_due(round)) {
      for (auto& worker : workers_) {
        checkpoint_worker(*worker, round);
        ++checkpoints_written_;
      }
    }
  }

  result.wall_seconds = wall.elapsed_seconds();
  finalize(result);
  return result;
}

ClusterResult Cluster::run_threaded() {
  util::Stopwatch wall;
  ClusterResult result;
  const FaultToleranceOptions& ft = options_.fault_tolerance;

  const auto n = static_cast<std::ptrdiff_t>(workers_.size());
  std::atomic<std::size_t> round_sent{0};
  std::atomic<std::size_t> resent_total{0};
  std::atomic<bool> done{false};
  std::atomic<bool> delivery_done{false};
  std::atomic<bool> delivery_failed{false};
  std::atomic<std::uint32_t> rounds_executed{start_round_};
  std::atomic<std::uint32_t> delivery_retries{0};

  // Completion step of the post-compute barrier: decide termination for
  // the round everyone just finished, and reset the delivery loop.
  auto on_compute_done = [&]() noexcept {
    rounds_executed.fetch_add(1);
    if (round_sent.exchange(0) == 0) {
      done.store(true);
    }
    ack_board_.clear();
    delivery_retries.store(0);
    delivery_done.store(false);
  };
  // Completion step after each retransmission sweep: the round's delivery
  // is complete when nobody had anything left to resend.
  auto on_resend_done = [&]() noexcept {
    if (resent_total.exchange(0) == 0) {
      delivery_done.store(true);
      return;
    }
    const std::uint32_t retry = delivery_retries.fetch_add(1);
    if (retry >= ft.max_retries) {
      delivery_failed.store(true);
    } else {
      backoff_seconds_ += ft.backoff_base_seconds *
                          std::pow(ft.backoff_multiplier, retry);
    }
  };
  std::barrier compute_barrier(n, on_compute_done);
  std::barrier collect_barrier(n);
  std::barrier resend_barrier(n, on_resend_done);
  std::barrier receive_barrier(n);
  std::atomic<std::uint64_t> ckpts{0};

  {
    std::vector<std::jthread> threads;
    threads.reserve(workers_.size());
    for (auto& worker_ptr : workers_) {
      threads.emplace_back([&, worker = worker_ptr.get()]() {
        for (std::uint32_t round = start_round_; round < options_.max_rounds;
             ++round) {
          const std::size_t sent = worker->compute_and_send(round);
          round_sent.fetch_add(sent);

          util::Stopwatch sync_watch;
          compute_barrier.arrive_and_wait();
          worker->mutable_rounds()[round].sync_seconds +=
              sync_watch.elapsed_seconds();

          if (done.load()) {
            return;
          }

          // Ack/retry delivery loop, in lockstep across threads: collect &
          // ack, barrier, retransmit what the board is missing, barrier —
          // until a sweep resends nothing.
          worker->collect(round, &ack_board_);
          while (true) {
            collect_barrier.arrive_and_wait();
            resent_total.fetch_add(
                worker->retransmit_unacked(round, ack_board_));
            resend_barrier.arrive_and_wait();
            if (delivery_done.load() || delivery_failed.load()) {
              break;
            }
            worker->collect(round, &ack_board_);
          }
          if (delivery_failed.load()) {
            return;
          }
          worker->aggregate_round(round);
          if (checkpoint_due(round)) {
            checkpoint_worker(*worker, round);
            ckpts.fetch_add(1);
          }
          receive_barrier.arrive_and_wait();
        }
      });
    }
  }  // jthreads join

  checkpoints_written_ += ckpts.load();
  if (delivery_failed.load()) {
    throw DeliveryFailure("round delivery exceeded max_retries");
  }

  result.rounds = rounds_executed.load();
  result.wall_seconds = wall.elapsed_seconds();
  finalize(result);
  return result;
}

// -- Asynchronous executors -------------------------------------------
//
// Both async modes drop the round barrier: each worker drains arrivals as
// they come (async_collect), evaluates bounded frontier chunks
// (async_step), and — when idle — steals a frontier shard from the most-
// backlogged peer, evaluating it against the victim's store and shipping
// the derivations back (kStealResult) plus routed copies.  Global
// quiescence is detected with a Dijkstra-style dirty-flag token ring over
// the same ack'd envelopes: worker 0 launches strictly sequential probes;
// a worker forwards the token only when passive (no backlog) with every
// sent envelope acknowledged, blackening it if the worker did anything
// since its previous forward.  A white token returning to a clean, passive,
// fully-acked initiator proves global quiescence: any in-flight message
// would have kept its sender's pending set non-empty (blocking the
// sender's forward), and any absorb after a worker's forward dirties a
// worker that must still forward — blackening this or a later token.
//
// The closure is a monotone fixpoint, so the final per-worker tuple SETS
// are identical to the synchronous modes' for every interleaving, fault
// schedule, and steal decision — the equivalence sweep asserts exactly
// this.

ClusterResult Cluster::run_async() {
  util::Stopwatch wall;
  ClusterResult result;
  AsyncStats stats;
  const AsyncOptions& ao = options_.async;
  const FaultToleranceOptions& ft = options_.fault_tolerance;
  const NetworkModel& net = options_.network;
  const std::size_t n = workers_.size();
  const bool checkpointing = !options_.checkpoint.dir.empty();

  // Per-worker scheduler state (the sequential flavour keeps it all on one
  // thread; virtual clocks model the parallel makespan on this host).
  struct Ctl {
    bool dirty = true;  // activity since the last token forward
    bool has_token = false;
    std::uint32_t token_epoch = 0;
    bool token_black = false;
    std::uint32_t idle_polls = 0;
    double vclock = 0.0;  // busy seconds: compute + modeled/measured comm
    std::uint64_t activations = 0;
  };
  std::vector<Ctl> ctl(n);

  // Probe epochs restart above any pre-crash epoch after a recovery, just
  // as worker send sequences do.
  std::uint32_t epoch = start_round_ > 0
                            ? start_round_ + kRecoveryEpochGap
                            : 0;
  bool probe_outstanding = false;
  std::uint32_t probe_launch_epoch = 0;
  bool initiator_dirty_since_launch = false;
  bool terminated = n == 0;

  if (checkpointing) {
    for (auto& worker : workers_) {
      worker->enable_outbox();
    }
  }
  if (start_round_ > 0) {
    // Crash recovery: the board's pre-crash acks are stale (a fresh drop
    // of a resent envelope must trigger retransmission, not be masked by
    // an old ack), and every retained outbox envelope is resent — the
    // receivers deduplicate what they already absorbed.
    ack_board_.clear();
    for (auto& worker : workers_) {
      worker->resend_outbox(nullptr);
    }
  }

  const double bw = std::max(1.0, net.bandwidth_bytes_per_sec);
  const auto comm_cost = [&](std::size_t batches, std::size_t tuples) {
    return net.latency_seconds * static_cast<double>(batches) +
           net.bytes_per_tuple * static_cast<double>(tuples) / bw;
  };

  std::uint32_t stalled_cycles = 0;
  while (!terminated) {
    bool any_progress = false;
    for (std::uint32_t w = 0; w < n && !terminated; ++w) {
      Worker& worker = *workers_[w];
      Ctl& c = ctl[w];

      // Injected crash: the async analogue of crash_at_round is "the Nth
      // evaluation activation of crash_worker" — deferred until the first
      // epoch checkpoint exists, so recovery is always possible (the test
      // knob is for exercising recovery, not unrecoverable loss).
      if (crash_armed_ && w == ft.crash_worker &&
          checkpoints_written_ > 0 &&
          static_cast<std::int64_t>(c.activations) >= ft.crash_at_round) {
        crash_armed_ = false;
        throw SimulatedCrash("worker " + std::to_string(w) +
                             " killed at activation " +
                             std::to_string(c.activations));
      }

      // Drain arrivals (data + steal results absorbed, tokens handed up).
      const auto arrivals = worker.async_collect(&ack_board_);
      if (arrivals.fresh > 0 || arrivals.batches > 0) {
        c.dirty = true;
        if (w == 0 && probe_outstanding) {
          initiator_dirty_since_launch = true;
        }
        any_progress = true;
      }
      for (const Batch& token : arrivals.tokens) {
        if (token.token_epoch < epoch) {
          continue;  // stale pre-recovery probe
        }
        c.has_token = true;
        c.token_epoch = token.token_epoch;
        c.token_black = c.token_black || token.token_black;
        stats.token_passes += 1;
        any_progress = true;
      }

      // Evaluate one frontier chunk, or steal from the most backlogged
      // peer when this worker has nothing of its own.
      bool active = false;
      if (worker.backlog() > 0) {
        const auto step = worker.async_step(ao.chunk, nullptr);
        c.vclock += step.compute_seconds +
                    comm_cost(step.sent_batches, step.sent_tuples);
        c.activations += 1;
        stats.activations += 1;
        c.dirty = true;
        if (w == 0 && probe_outstanding) {
          initiator_dirty_since_launch = true;
        }
        active = step.consumed > 0;
      } else if (ao.steal) {
        std::uint32_t victim = w;
        std::size_t best = 0;
        for (std::uint32_t v = 0; v < n; ++v) {
          if (v != w && workers_[v]->can_steal_from() &&
              workers_[v]->backlog() > best) {
            best = workers_[v]->backlog();
            victim = v;
          }
        }
        // Only steal genuine backlog beyond one chunk: the owner is about
        // to evaluate its next chunk anyway.
        if (victim != w && best > ao.chunk) {
          obs::Span steal_span("parallel.steal",
                               {{"worker", w}, {"victim", victim}},
                               100 + w);
          Worker& vic = *workers_[victim];
          const auto shard = vic.grant_steal(ao.steal_batch);
          util::Stopwatch steal_watch;
          const auto derivations =
              vic.evaluate_shard(shard.lo, shard.hi);
          const std::size_t shipped =
              worker.ship_steal_results(victim, derivations, nullptr);
          c.vclock += steal_watch.elapsed_seconds() +
                      comm_cost(shipped > 0 ? 2 : 0, shipped);
          c.activations += 1;
          stats.activations += 1;
          stats.steals += 1;
          stats.stolen_tuples += shard.hi - shard.lo;
          stats.steal_derivations += shipped;
          steal_span.arg({"tuples", shard.hi - shard.lo});
          steal_span.arg({"derived", derivations.size()});
          c.dirty = true;
          ctl[victim].dirty = true;  // its frontier advanced
          if (probe_outstanding && (w == 0 || victim == 0)) {
            initiator_dirty_since_launch = true;
          }
          active = true;
        }
      }
      if (active) {
        c.idle_polls = 0;
        any_progress = true;
      } else {
        PAROWL_SPAN("parallel.idle", {{"worker", w}}, 100 + w);
        c.idle_polls += 1;
        if (c.idle_polls % std::max<std::uint32_t>(1, ao.retransmit_after) ==
            0) {
          const std::size_t unacked = worker.release_acked(ack_board_);
          if (unacked > 0 &&
              worker.retransmit_unacked_async(ack_board_) > 0) {
            backoff_seconds_ += ft.backoff_base_seconds;
            any_progress = true;
          }
        }
      }

      const std::size_t still_pending = worker.release_acked(ack_board_);
      const bool passive = worker.backlog() == 0 && still_pending == 0;

      // Token ring.  The initiator launches strictly sequential probes;
      // everyone else forwards when passive, blackening if dirty.
      if (w == 0) {
        if (!probe_outstanding && passive && n > 1) {
          probe_launch_epoch = ++epoch;
          probe_outstanding = true;
          initiator_dirty_since_launch = false;
          c.dirty = false;
          worker.send_token(1, probe_launch_epoch, false, nullptr);
          stats.token_epochs += 1;
          any_progress = true;
        } else if (c.has_token && c.token_epoch == probe_launch_epoch) {
          // The probe came home.
          const bool white = !c.token_black;
          c.has_token = false;
          c.token_black = false;
          probe_outstanding = false;
          if (checkpointing &&
              (ao.checkpoint_epochs == 0 ||
               probe_launch_epoch %
                       std::max<std::uint32_t>(1, ao.checkpoint_epochs) ==
                   0)) {
            // Epoch cut: every worker checkpoints with the token epoch as
            // the round header.  In-flight envelopes are covered by the
            // retained outbox logs each checkpoint embeds.
            for (auto& wk : workers_) {
              wk->release_acked(ack_board_);
              checkpoint_worker(*wk, probe_launch_epoch);
              wk->prune_outbox();
              ++checkpoints_written_;
            }
          }
          if (white && !initiator_dirty_since_launch && passive) {
            terminated = true;
          }
          any_progress = true;
        } else if (n == 1) {
          terminated = passive;
        }
      } else if (c.has_token && passive) {
        const bool black = c.token_black || c.dirty;
        c.dirty = false;
        c.has_token = false;
        c.token_black = false;
        worker.send_token((w + 1) % static_cast<std::uint32_t>(n),
                          c.token_epoch, black, nullptr);
        stats.token_passes += 1;
        any_progress = true;
      }
    }

    if (stats.token_epochs > options_.max_rounds) {
      throw DeliveryFailure("async run exceeded max_rounds token epochs");
    }
    stalled_cycles = any_progress ? 0 : stalled_cycles + 1;
    if (stalled_cycles > kAsyncStallLimit) {
      throw DeliveryFailure(
          "async executor stalled: no progress over " +
          std::to_string(kAsyncStallLimit) + " scheduler cycles");
    }
  }

  // Makespan and idle accounting: on this single-core host the virtual
  // clocks are the honest stand-in — a worker's idle time is the gap to
  // the busiest worker, exactly the quantity the round-synchronous mode
  // reports as sync_seconds.
  double makespan = 0.0;
  for (const Ctl& c : ctl) {
    makespan = std::max(makespan, c.vclock);
  }
  stats.idle_seconds_per_worker.reserve(n);
  for (const Ctl& c : ctl) {
    const double idle = makespan - c.vclock;
    stats.idle_seconds_per_worker.push_back(idle);
    stats.idle_seconds += idle;
  }
  result.simulated_seconds = makespan + backoff_seconds_;
  result.rounds = stats.token_epochs;
  result.wall_seconds = wall.elapsed_seconds();
  finalize_async(result, stats);
  return result;
}

ClusterResult Cluster::run_async_threaded() {
  util::Stopwatch wall;
  ClusterResult result;
  AsyncStats stats;
  const AsyncOptions& ao = options_.async;
  const FaultToleranceOptions& ft = options_.fault_tolerance;
  const std::size_t n = workers_.size();

  // Per-worker control: the worker's own mutex guards all Worker state
  // (store, frontier, pending, outbox); the atomics are cheap cross-thread
  // hints and the termination protocol state.
  struct Ctl {
    std::mutex m;
    std::atomic<bool> dirty{true};
    std::atomic<std::size_t> backlog_hint{0};
    // Token state, only touched by the owner's thread.
    bool has_token = false;
    std::uint32_t token_epoch = 0;
    bool token_black = false;
    std::uint32_t idle_polls = 0;
    double idle_seconds = 0.0;
    std::uint64_t activations = 0;
  };
  std::vector<std::unique_ptr<Ctl>> ctl;
  ctl.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ctl.push_back(std::make_unique<Ctl>());
  }

  std::uint32_t epoch_base =
      start_round_ > 0 ? start_round_ + kRecoveryEpochGap : 0;
  std::atomic<bool> terminated{n == 0};
  std::atomic<bool> stalled{false};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> stolen_tuples{0};
  std::atomic<std::uint64_t> steal_derivations{0};
  std::atomic<std::uint64_t> activations{0};
  std::atomic<std::uint64_t> token_epochs{0};
  std::atomic<std::uint64_t> token_passes{0};

  if (start_round_ > 0) {
    ack_board_.clear();
    for (auto& worker : workers_) {
      worker->resend_outbox(nullptr);
    }
  }

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (std::uint32_t w = 0; w < n; ++w) {
      threads.emplace_back([&, w]() {
        Worker& worker = *workers_[w];
        Ctl& c = *ctl[w];
        bool probe_outstanding = false;
        std::uint32_t probe_launch_epoch = epoch_base;
        bool initiator_dirty_since_launch = false;
        std::uint32_t my_stall = 0;

        while (!terminated.load(std::memory_order_acquire) &&
               !stalled.load(std::memory_order_acquire)) {
          bool progress = false;
          bool passive = false;
          std::vector<Batch> tokens;

          {
            const std::scoped_lock lock(c.m);
            auto arrivals = worker.async_collect(&ack_board_);
            tokens = std::move(arrivals.tokens);
            if (arrivals.fresh > 0 || arrivals.batches > 0) {
              c.dirty.store(true, std::memory_order_release);
              if (w == 0) {
                initiator_dirty_since_launch = true;
              }
              progress = true;
            }
            if (worker.backlog() > 0) {
              const auto step = worker.async_step(ao.chunk, nullptr);
              c.activations += 1;
              activations.fetch_add(1);
              c.dirty.store(true, std::memory_order_release);
              if (w == 0) {
                initiator_dirty_since_launch = true;
              }
              progress = progress || step.consumed > 0;
            }
            c.backlog_hint.store(worker.backlog(),
                                 std::memory_order_release);
          }

          for (const Batch& token : tokens) {
            if (token.token_epoch < epoch_base) {
              continue;
            }
            c.has_token = true;
            c.token_epoch = token.token_epoch;
            c.token_black = c.token_black || token.token_black;
            token_passes.fetch_add(1);
            progress = true;
          }

          if (!progress && ao.steal) {
            // Pick the most backlogged peer by hint, then try its lock —
            // never while holding our own (no nested worker locks).
            std::uint32_t victim = w;
            std::size_t best = ao.chunk;  // only steal real backlog
            for (std::uint32_t v = 0; v < n; ++v) {
              const std::size_t b =
                  v == w ? 0
                         : ctl[v]->backlog_hint.load(
                               std::memory_order_acquire);
              if (v != w && workers_[v]->can_steal_from() && b > best) {
                best = b;
                victim = v;
              }
            }
            if (victim != w && ctl[victim]->m.try_lock()) {
              Worker::StealShard shard;
              std::vector<reason::ForwardEngine::Derivation> derivations;
              {
                const std::lock_guard<std::mutex> vlock(
                    ctl[victim]->m, std::adopt_lock);
                Worker& vic = *workers_[victim];
                if (vic.backlog() > ao.chunk) {
                  shard = vic.grant_steal(ao.steal_batch);
                  derivations = vic.evaluate_shard(shard.lo, shard.hi);
                  ctl[victim]->dirty.store(true,
                                           std::memory_order_release);
                  ctl[victim]->backlog_hint.store(
                      vic.backlog(), std::memory_order_release);
                }
              }
              if (shard.hi > shard.lo) {
                obs::Span steal_span("parallel.steal",
                                     {{"worker", w}, {"victim", victim}},
                                     100 + w);
                std::size_t shipped = 0;
                {
                  const std::scoped_lock lock(c.m);
                  shipped = worker.ship_steal_results(victim, derivations,
                                                      nullptr);
                  c.dirty.store(true, std::memory_order_release);
                }
                if (w == 0) {
                  initiator_dirty_since_launch = true;
                }
                c.activations += 1;
                activations.fetch_add(1);
                steals.fetch_add(1);
                stolen_tuples.fetch_add(shard.hi - shard.lo);
                steal_derivations.fetch_add(shipped);
                steal_span.arg({"tuples", shard.hi - shard.lo});
                progress = true;
              }
            }
          }

          if (progress) {
            c.idle_polls = 0;
            my_stall = 0;
          } else {
            obs::Span idle_span("parallel.idle", {{"worker", w}}, 100 + w);
            util::Stopwatch idle_watch;
            c.idle_polls += 1;
            if (c.idle_polls %
                    std::max<std::uint32_t>(1, ao.retransmit_after) ==
                0) {
              const std::scoped_lock lock(c.m);
              if (worker.release_acked(ack_board_) > 0) {
                worker.retransmit_unacked_async(ack_board_);
              }
            }
            std::this_thread::yield();
            c.idle_seconds += idle_watch.elapsed_seconds();
            if (++my_stall > kAsyncStallLimit) {
              stalled.store(true, std::memory_order_release);
            }
          }

          {
            const std::scoped_lock lock(c.m);
            passive = worker.backlog() == 0 &&
                      worker.release_acked(ack_board_) == 0;
          }

          if (w == 0) {
            if (!probe_outstanding && passive && n > 1) {
              probe_launch_epoch += 1;
              probe_outstanding = true;
              initiator_dirty_since_launch = false;
              c.dirty.store(false, std::memory_order_release);
              {
                const std::scoped_lock lock(c.m);
                worker.send_token(1, probe_launch_epoch, false, nullptr);
              }
              token_epochs.fetch_add(1);
              if (token_epochs.load() > options_.max_rounds) {
                stalled.store(true, std::memory_order_release);
              }
            } else if (c.has_token &&
                       c.token_epoch == probe_launch_epoch) {
              const bool white = !c.token_black;
              c.has_token = false;
              c.token_black = false;
              probe_outstanding = false;
              if (white && !initiator_dirty_since_launch && passive) {
                terminated.store(true, std::memory_order_release);
              }
            } else if (n == 1 && passive) {
              terminated.store(true, std::memory_order_release);
            }
          } else if (c.has_token && passive) {
            const bool black =
                c.token_black || c.dirty.load(std::memory_order_acquire);
            c.dirty.store(false, std::memory_order_release);
            c.has_token = false;
            c.token_black = false;
            {
              const std::scoped_lock lock(c.m);
              worker.send_token((w + 1) % static_cast<std::uint32_t>(n),
                                c.token_epoch, black, nullptr);
            }
            token_passes.fetch_add(1);
          }
        }
      });
    }
  }  // jthreads join

  if (stalled.load()) {
    throw DeliveryFailure("async threaded run stalled or exceeded "
                          "max_rounds token epochs");
  }

  // One consistent final cut: after termination nothing is in flight, so
  // checkpointing here matches the synchronous mode's end-of-round cut.
  if (!options_.checkpoint.dir.empty()) {
    const auto final_epoch = static_cast<std::uint32_t>(
        epoch_base + token_epochs.load() + 1);
    for (auto& worker : workers_) {
      checkpoint_worker(*worker, final_epoch);
      ++checkpoints_written_;
    }
  }

  stats.activations = activations.load();
  stats.steals = steals.load();
  stats.stolen_tuples = stolen_tuples.load();
  stats.steal_derivations = steal_derivations.load();
  stats.token_epochs = token_epochs.load();
  stats.token_passes = token_passes.load();
  stats.idle_seconds_per_worker.reserve(n);
  for (const auto& c : ctl) {
    stats.idle_seconds_per_worker.push_back(c->idle_seconds);
    stats.idle_seconds += c->idle_seconds;
  }
  (void)ft;
  result.rounds = stats.token_epochs;
  result.wall_seconds = wall.elapsed_seconds();
  result.simulated_seconds = result.wall_seconds;
  finalize_async(result, stats);
  return result;
}

void Cluster::finalize_async(ClusterResult& result, const AsyncStats& stats) {
  // Async runs have no per-round breakdown; the component totals are the
  // per-worker maxima (the parallel-makespan contribution of each
  // component), and sync_seconds is the idle analogue.
  result.async_stats = stats;
  std::unordered_set<rdf::Triple, rdf::TripleHash> union_results;
  for (const auto& worker : workers_) {
    double reason_total = 0.0;
    double io_total = 0.0;
    double aggregate_total = 0.0;
    for (const RoundStats& rs : worker->rounds()) {
      reason_total += rs.reason_seconds;
      io_total += rs.io_seconds;
      aggregate_total += rs.aggregate_seconds;
    }
    result.reason_seconds = std::max(result.reason_seconds, reason_total);
    result.io_seconds = std::max(result.io_seconds, io_total);
    result.aggregate_seconds =
        std::max(result.aggregate_seconds, aggregate_total);
    result.reason_seconds_per_worker.push_back(reason_total);
    result.results_per_partition.push_back(worker->result_size());
    const auto& log = worker->store().triples();
    for (std::size_t i = worker->base_size(); i < log.size(); ++i) {
      union_results.insert(log[i]);
    }
  }
  result.union_results = union_results.size();
  for (const double idle : stats.idle_seconds_per_worker) {
    result.sync_seconds = std::max(result.sync_seconds, idle);
  }

  RunReport& rep = result.report;
  for (const auto& worker : workers_) {
    for (const RoundStats& rs : worker->rounds()) {
      rep.batches_sent += rs.sent_messages;
      rep.retransmissions += rs.retransmitted;
      rep.redeliveries += rs.redelivered;
      rep.checksum_failures += rs.corrupt_batches;
    }
  }
  rep.injected = transport_.injected_faults();
  rep.checkpoints_written = checkpoints_written_;
  rep.backoff_seconds = backoff_seconds_;
  rep.recovered = recovered_;
  rep.recovered_from_round = recovered_from_round_;

  obs::publish(rep, "parallel.run");
  obs::publish(stats, "parallel.async");
  auto& registry = obs::MetricsRegistry::global();
  registry.gauge("parallel.rounds").set(static_cast<double>(result.rounds));
  registry.gauge("parallel.reason_seconds").set(result.reason_seconds);
  registry.gauge("parallel.io_seconds").set(result.io_seconds);
  registry.gauge("parallel.sync_seconds").set(result.sync_seconds);
  registry.gauge("parallel.aggregate_seconds").set(result.aggregate_seconds);
  registry.gauge("parallel.simulated_seconds").set(result.simulated_seconds);
  // First-class idle metric: total idle nanoseconds across workers.
  PAROWL_COUNT("parallel.idle_ns",
               static_cast<std::uint64_t>(stats.idle_seconds * 1e9));
}

void Cluster::finalize(ClusterResult& result) {
  const NetworkModel& net = options_.network;

  // Per-round maxima and the simulated makespan.
  result.breakdown.assign(result.rounds, RoundBreakdown{});
  for (std::uint32_t round = 0; round < result.rounds; ++round) {
    RoundBreakdown& rb = result.breakdown[round];
    double compute_max = 0.0;
    for (const auto& worker : workers_) {
      if (worker->rounds().size() <= round) {
        continue;
      }
      const RoundStats& rs = worker->rounds()[round];
      rb.reason_max = std::max(rb.reason_max, rs.reason_seconds);
      rb.aggregate_max = std::max(rb.aggregate_max, rs.aggregate_seconds);
      rb.tuples_exchanged += rs.sent_tuples;

      const double comm =
          net.use_measured_io
              ? rs.io_seconds
              : net.latency_seconds * static_cast<double>(rs.sent_messages) +
                    net.bytes_per_tuple *
                        static_cast<double>(rs.sent_tuples +
                                            rs.received_tuples) /
                        net.bandwidth_bytes_per_sec;
      rb.io_max = std::max(rb.io_max, comm);
      compute_max = std::max(
          compute_max, rs.reason_seconds + rs.aggregate_seconds + comm);
    }
    // In the simulated mode, a worker's synchronization wait is the gap to
    // the slowest worker of the round.
    if (options_.mode == ExecutionMode::kSequentialSimulated) {
      for (const auto& worker : workers_) {
        if (worker->rounds().size() <= round) {
          continue;
        }
        RoundStats& rs = worker->mutable_rounds()[round];
        const double comm =
            net.use_measured_io
                ? rs.io_seconds
                : net.latency_seconds *
                          static_cast<double>(rs.sent_messages) +
                      net.bytes_per_tuple *
                          static_cast<double>(rs.sent_tuples +
                                              rs.received_tuples) /
                          net.bandwidth_bytes_per_sec;
        const double own =
            rs.reason_seconds + rs.aggregate_seconds + comm;
        rs.sync_seconds = std::max(0.0, compute_max - own);
      }
    }
    for (const auto& worker : workers_) {
      if (worker->rounds().size() > round) {
        rb.sync_max = std::max(rb.sync_max,
                               worker->rounds()[round].sync_seconds);
      }
    }

    result.reason_seconds += rb.reason_max;
    result.io_seconds += rb.io_max;
    result.sync_seconds += rb.sync_max;
    result.aggregate_seconds += rb.aggregate_max;
    result.simulated_seconds += rb.reason_max + rb.aggregate_max + rb.io_max;
  }

  // Per-worker reasoning totals (for predictive rebalancing) and the
  // result-tuple union for the OR metric.
  std::unordered_set<rdf::Triple, rdf::TripleHash> union_results;
  for (const auto& worker : workers_) {
    double reason_total = 0.0;
    for (const RoundStats& rs : worker->rounds()) {
      reason_total += rs.reason_seconds;
    }
    result.reason_seconds_per_worker.push_back(reason_total);
    result.results_per_partition.push_back(worker->result_size());
    const auto& log = worker->store().triples();
    for (std::size_t i = worker->base_size(); i < log.size(); ++i) {
      union_results.insert(log[i]);
    }
  }
  result.union_results = union_results.size();

  // Fault-tolerance accounting.
  RunReport& rep = result.report;
  for (const auto& worker : workers_) {
    for (const RoundStats& rs : worker->rounds()) {
      rep.batches_sent += rs.sent_messages;
      rep.retransmissions += rs.retransmitted;
      rep.redeliveries += rs.redelivered;
      rep.checksum_failures += rs.corrupt_batches;
    }
  }
  rep.injected = transport_.injected_faults();
  rep.checkpoints_written = checkpoints_written_;
  rep.backoff_seconds = backoff_seconds_;
  rep.recovered = recovered_;
  rep.recovered_from_round = recovered_from_round_;
  result.simulated_seconds += backoff_seconds_;

  // Export the run's headline numbers into the global registry.
  obs::publish(rep, "parallel.run");
  auto& registry = obs::MetricsRegistry::global();
  registry.gauge("parallel.rounds").set(static_cast<double>(result.rounds));
  registry.gauge("parallel.reason_seconds").set(result.reason_seconds);
  registry.gauge("parallel.io_seconds").set(result.io_seconds);
  registry.gauge("parallel.sync_seconds").set(result.sync_seconds);
  registry.gauge("parallel.aggregate_seconds").set(result.aggregate_seconds);
  registry.gauge("parallel.simulated_seconds").set(result.simulated_seconds);
}

obs::FieldList fields(const AsyncStats& s) {
  return {
      {"activations", s.activations},
      {"steals", s.steals},
      {"stolen_tuples", s.stolen_tuples},
      {"steal_derivations", s.steal_derivations},
      {"token_epochs", s.token_epochs},
      {"token_passes", s.token_passes},
      {"idle_seconds", s.idle_seconds},
  };
}

obs::FieldList fields(const RunReport& r) {
  obs::FieldList out = {
      {"batches_sent", r.batches_sent},
      {"retransmissions", r.retransmissions},
      {"redeliveries", r.redeliveries},
      {"checksum_failures", r.checksum_failures},
      {"checkpoints_written", r.checkpoints_written},
      {"backoff_seconds", r.backoff_seconds},
      {"recovered", r.recovered},
      {"recovered_from_round", static_cast<std::uint64_t>(
          r.recovered_from_round < 0 ? 0 : r.recovered_from_round)},
  };
  for (obs::Field& f : fields(r.injected)) {
    f.name.insert(0, "injected_");
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace parowl::parallel
