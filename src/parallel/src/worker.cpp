#include "parowl/parallel/worker.hpp"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "parowl/obs/obs.hpp"
#include "parowl/rdf/codec.hpp"
#include "parowl/reason/forward.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {

namespace {

/// Virtual Perfetto track for a worker: every worker gets its own row in
/// the trace even when all of them run on one thread (sequential-simulated
/// mode).  The cluster names these tracks at run start.
std::uint32_t worker_track(std::uint32_t id) { return 100 + id; }

}  // namespace

Worker::Worker(std::uint32_t id, rules::RuleSet rule_base,
               std::shared_ptr<const Router> router, Transport* transport,
               WorkerOptions options)
    : id_(id),
      rule_base_(std::move(rule_base)),
      router_(std::move(router)),
      transport_(transport),
      options_(options) {}

void Worker::load(std::span<const rdf::Triple> base) {
  store_.insert_all(base);
  base_size_ = store_.size();
  frontier_ = 0;  // everything is new for the first closure
  route_mark_ = store_.size();  // base tuples are never shipped
}

RoundStats& Worker::round_stats(std::uint32_t round) {
  if (rounds_.size() <= round) {
    rounds_.resize(round + 1);
  }
  return rounds_[round];
}

std::vector<Outgoing> Worker::compute_local(double* compute_seconds) {
  // (a) Local closure from the frontier.
  util::Stopwatch reason_watch;
  if (options_.strategy == reason::Strategy::kForward) {
    reason::ForwardOptions fopts;
    fopts.dict = options_.dict;
    fopts.threads = options_.reason_threads;
    const reason::ForwardStats fstats =
        reason::ForwardEngine(store_, rule_base_, fopts).run(frontier_);
    if (rule_firings_.size() < fstats.firings_per_rule.size()) {
      rule_firings_.resize(fstats.firings_per_rule.size(), 0);
    }
    for (std::size_t r = 0; r < fstats.firings_per_rule.size(); ++r) {
      rule_firings_[r] += fstats.firings_per_rule[r];
    }
  } else {
    // Incremental after round 0: only resources affected by newly received
    // tuples are re-queried (frontier_ == 0 falls back to a full run).
    reason::query_driven_closure_delta(store_, *options_.dict, rule_base_,
                                       frontier_, options_.share_tables);
  }
  if (compute_seconds != nullptr) {
    *compute_seconds = reason_watch.elapsed_seconds();
  }
  frontier_ = store_.size();

  // (b) Route fresh derivations.
  std::unordered_map<std::uint32_t, std::vector<rdf::Triple>> outgoing;
  std::vector<std::uint32_t> destinations;
  for (std::size_t i = route_mark_; i < store_.size(); ++i) {
    const rdf::Triple& t = store_.triples()[i];
    destinations.clear();
    router_->route(t, id_, destinations);
    for (const std::uint32_t dest : destinations) {
      outgoing[dest].push_back(t);
    }
  }
  route_mark_ = store_.size();

  std::vector<Outgoing> batches;
  batches.reserve(outgoing.size());
  for (auto& [dest, tuples] : outgoing) {
    batches.push_back(Outgoing{dest, std::move(tuples)});
  }
  // Deterministic ship order regardless of hash-map iteration.
  std::sort(batches.begin(), batches.end(),
            [](const Outgoing& a, const Outgoing& b) { return a.dest < b.dest; });
  return batches;
}

std::size_t Worker::absorb(std::span<const rdf::Triple> tuples) {
  // frontier_ is NOT advanced here: it marks the first log index the next
  // closure must consume, which may include tuples from an earlier absorb
  // that no compute has processed yet.
  std::size_t fresh = 0;
  for (const rdf::Triple& t : tuples) {
    fresh += store_.insert(t) ? 1 : 0;
  }
  // Foreign derivations are never re-shipped, only reasoned over.
  route_mark_ = store_.size();
  return fresh;
}

std::size_t Worker::compute_and_send(std::uint32_t round) {
  obs::Span round_span("parallel.round", {{"round", round}, {"worker", id_}},
                       worker_track(id_));
  RoundStats& rs = round_stats(round);
  pending_.clear();
  stash_.clear();

  const std::size_t before = store_.size();
  double compute_seconds = 0.0;
  std::vector<Outgoing> batches;
  {
    obs::Span compute_span("parallel.compute",
                           {{"round", round}, {"worker", id_}},
                           worker_track(id_));
    batches = compute_local(&compute_seconds);
    compute_span.arg({"derived", store_.size() - before});
  }
  rs.reason_seconds += compute_seconds;
  rs.derived += store_.size() - before;

  std::size_t sent = 0;
  obs::Span send_span("parallel.send", {{"round", round}, {"worker", id_}},
                      worker_track(id_));
  util::Stopwatch io_watch;
  for (const Outgoing& out : batches) {
    Batch batch;
    batch.from = id_;
    batch.to = out.dest;
    batch.round = round;
    batch.seq = 0;  // one envelope per destination per round
    batch.attempt = 0;
    batch.tuples = out.tuples;
    batch.checksum = batch_checksum(batch.tuples);
    pending_.push_back(batch);  // kept for retransmission until acked
    transport_->send_batch(std::move(batch));
    sent += out.tuples.size();
    rs.sent_messages += 1;
  }
  rs.io_seconds += io_watch.elapsed_seconds();
  rs.sent_tuples += sent;
  send_span.arg({"tuples", sent});
  PAROWL_COUNT("parallel.tuples_sent", sent);
  return sent;
}

std::size_t Worker::collect(std::uint32_t round, AckBoard* board) {
  obs::Span span("parallel.recv", {{"round", round}, {"worker", id_}},
                 worker_track(id_));
  RoundStats& rs = round_stats(round);

  util::Stopwatch io_watch;
  std::vector<Batch> arrived = transport_->receive_batches(id_, round);
  rs.io_seconds += io_watch.elapsed_seconds();

  std::size_t staged = 0;
  for (Batch& batch : arrived) {
    rs.received_tuples += batch.tuples.size();
    if (!batch.intact || batch_checksum(batch.tuples) != batch.checksum) {
      rs.corrupt_batches += 1;
      transport_->note_checksum_failure(id_);
      continue;  // no ack: the sender will retransmit
    }
    const std::uint64_t id = batch.id();
    if (board != nullptr) {
      board->ack(id);  // ack even redeliveries: the sender may have missed it
    }
    if (!seen_batches_.insert(id).second) {
      rs.redelivered += 1;
      transport_->note_redelivery(id_);
      continue;
    }
    stash_.push_back(std::move(batch));
    staged += 1;
  }
  span.arg({"batches", staged});
  return staged;
}

std::size_t Worker::retransmit_unacked(std::uint32_t round,
                                       const AckBoard& board) {
  obs::Span span("parallel.retransmit", {{"round", round}, {"worker", id_}},
                 worker_track(id_));
  RoundStats& rs = round_stats(round);
  std::erase_if(pending_,
                [&](const Batch& b) { return board.acked(b.id()); });

  std::size_t resent = 0;
  util::Stopwatch io_watch;
  for (Batch& batch : pending_) {
    batch.attempt += 1;
    transport_->send_batch(batch);
    rs.retransmitted += 1;
    resent += 1;
  }
  rs.io_seconds += io_watch.elapsed_seconds();
  span.arg({"resent", resent});
  PAROWL_COUNT("parallel.retransmissions", resent);
  return resent;
}

std::size_t Worker::aggregate_round(std::uint32_t round) {
  obs::Span span("parallel.aggregate", {{"round", round}, {"worker", id_}},
                 worker_track(id_));
  RoundStats& rs = round_stats(round);

  util::Stopwatch agg_watch;
  // Canonical merge order: the store log (and hence the next closure's
  // frontier order and per-rule firing credit) must not depend on arrival
  // order, which faults perturb.
  std::sort(stash_.begin(), stash_.end(), [](const Batch& a, const Batch& b) {
    return std::tie(a.from, a.seq) < std::tie(b.from, b.seq);
  });
  std::size_t fresh = 0;
  for (Batch& batch : stash_) {
    std::sort(batch.tuples.begin(), batch.tuples.end());
    fresh += absorb(batch.tuples);
  }
  stash_.clear();
  rs.aggregate_seconds += agg_watch.elapsed_seconds();
  rs.received_new += fresh;
  span.arg({"fresh", fresh});
  return fresh;
}

std::size_t Worker::receive_and_aggregate(std::uint32_t round) {
  collect(round, nullptr);
  return aggregate_round(round);
}

// -- Asynchronous execution -------------------------------------------

void Worker::ship_async(Batch batch, std::vector<SentRecord>* sent) {
  batch.from = id_;
  // Monotonic per-sender sequence in the id's round field: with no shared
  // round, uniqueness comes from (from, to, send_seq).
  batch.round = send_seq_++;
  batch.seq = 0;
  batch.attempt = 0;
  batch.checksum = batch_checksum(batch.tuples);
  if (sent != nullptr) {
    sent->push_back(SentRecord{batch.id(), batch.tuples.size()});
  }
  pending_.push_back(batch);
  if (log_outbox_ && batch.kind != BatchKind::kToken) {
    outbox_.push_back(OutboxEntry{batch, -1});
  }
  transport_->send_batch(std::move(batch));
}

Worker::AsyncArrivals Worker::async_collect(AckBoard* board) {
  obs::Span span("parallel.drain", {{"worker", id_}}, worker_track(id_));
  RoundStats& rs = round_stats(0);  // async stats accumulate on slot 0

  util::Stopwatch io_watch;
  std::vector<Batch> arrived = transport_->receive_all(id_);
  rs.io_seconds += io_watch.elapsed_seconds();

  AsyncArrivals result;
  std::vector<Batch> staged;
  for (Batch& batch : arrived) {
    rs.received_tuples += batch.tuples.size();
    if (!batch.intact || batch_checksum(batch.tuples) != batch.checksum) {
      rs.corrupt_batches += 1;
      transport_->note_checksum_failure(id_);
      continue;  // no ack: the sender will retransmit
    }
    const std::uint64_t id = batch.id();
    if (board != nullptr) {
      board->ack(id);  // ack even redeliveries: the sender may have missed it
    }
    if (!seen_batches_.insert(id).second) {
      rs.redelivered += 1;
      transport_->note_redelivery(id_);
      continue;
    }
    if (batch.kind == BatchKind::kToken) {
      result.tokens.push_back(std::move(batch));
      continue;
    }
    if (batch.kind == BatchKind::kStealResult) {
      result.steal_tuples += batch.tuples.size();
    }
    staged.push_back(std::move(batch));
    result.batches += 1;
  }

  // Canonical absorb order within the poll: batches by (from, round-field
  // a.k.a. sender sequence), tuples sorted within each batch.  The final
  // store SET is interleaving-independent anyway (monotone closure); this
  // just keeps each poll deterministic for a fixed arrival set.
  util::Stopwatch agg_watch;
  std::sort(staged.begin(), staged.end(), [](const Batch& a, const Batch& b) {
    return std::tie(a.from, a.round) < std::tie(b.from, b.round);
  });
  for (Batch& batch : staged) {
    std::sort(batch.tuples.begin(), batch.tuples.end());
    result.fresh += absorb(batch.tuples);
  }
  rs.aggregate_seconds += agg_watch.elapsed_seconds();
  rs.received_new += result.fresh;
  span.arg({"batches", result.batches});
  span.arg({"fresh", result.fresh});
  return result;
}

Worker::AsyncStepStats Worker::async_step(std::size_t max_delta,
                                          std::vector<SentRecord>* sent) {
  AsyncStepStats st;
  RoundStats& rs = round_stats(0);
  const std::size_t before = store_.size();

  util::Stopwatch reason_watch;
  if (options_.strategy == reason::Strategy::kForward) {
    // One bounded matching pass over the next frontier chunk.  New
    // derivations land at the end of the log and become further backlog,
    // so repeated steps still reach the local fixpoint.
    const std::size_t hi = std::min(store_.size(), frontier_ + max_delta);
    if (frontier_ >= hi) {
      return st;
    }
    reason::ForwardOptions fopts;
    fopts.dict = options_.dict;
    fopts.threads = options_.reason_threads;
    reason::ForwardEngine engine(store_, rule_base_, fopts);
    const auto derivations = engine.match_delta(frontier_, hi);
    st.consumed = hi - frontier_;
    frontier_ = hi;
    for (const auto& d : derivations) {
      if (store_.insert(d.triple)) {
        st.derived += 1;
        if (rule_firings_.size() <= d.rule) {
          rule_firings_.resize(d.rule + 1, 0);
        }
        rule_firings_[d.rule] += 1;
      }
    }
  } else {
    // Query-driven workers have no incremental chunk notion: close fully
    // from the frontier, exactly as one synchronous round would.
    const std::size_t backlog_before = backlog();
    if (backlog_before == 0) {
      return st;
    }
    reason::query_driven_closure_delta(store_, *options_.dict, rule_base_,
                                       frontier_, options_.share_tables);
    st.consumed = backlog_before;
    frontier_ = store_.size();
    st.derived = store_.size() - before;
  }
  st.compute_seconds = reason_watch.elapsed_seconds();
  rs.reason_seconds += st.compute_seconds;
  rs.derived += store_.size() - before;

  // Route and ship the fresh derivations (insertions happened above, so
  // route exactly [before, size) minus anything absorb already marked).
  std::unordered_map<std::uint32_t, std::vector<rdf::Triple>> outgoing;
  std::vector<std::uint32_t> destinations;
  for (std::size_t i = std::max(route_mark_, before); i < store_.size();
       ++i) {
    const rdf::Triple& t = store_.triples()[i];
    destinations.clear();
    router_->route(t, id_, destinations);
    for (const std::uint32_t dest : destinations) {
      outgoing[dest].push_back(t);
    }
  }
  route_mark_ = store_.size();

  std::vector<Outgoing> batches;
  batches.reserve(outgoing.size());
  for (auto& [dest, tuples] : outgoing) {
    batches.push_back(Outgoing{dest, std::move(tuples)});
  }
  std::sort(batches.begin(), batches.end(),
            [](const Outgoing& a, const Outgoing& b) {
              return a.dest < b.dest;
            });

  util::Stopwatch io_watch;
  for (Outgoing& out : batches) {
    Batch batch;
    batch.to = out.dest;
    batch.kind = BatchKind::kData;
    batch.tuples = std::move(out.tuples);
    st.sent_tuples += batch.tuples.size();
    st.sent_batches += 1;
    ship_async(std::move(batch), sent);
  }
  rs.io_seconds += io_watch.elapsed_seconds();
  rs.sent_tuples += st.sent_tuples;
  rs.sent_messages += st.sent_batches;
  PAROWL_COUNT("parallel.tuples_sent", st.sent_tuples);
  return st;
}

Worker::StealShard Worker::grant_steal(std::size_t max_tuples) {
  StealShard shard;
  shard.lo = frontier_;
  shard.hi = std::min(store_.size(), frontier_ + max_tuples);
  frontier_ = shard.hi;  // the thief owns evaluating [lo, hi) now
  return shard;
}

std::vector<reason::ForwardEngine::Derivation> Worker::evaluate_shard(
    std::size_t lo, std::size_t hi) const {
  // match_delta never mutates the store; the const_cast only satisfies the
  // engine's store-reference constructor.
  auto& store = const_cast<rdf::TripleStore&>(store_);
  reason::ForwardOptions fopts;
  fopts.dict = options_.dict;
  fopts.threads = 1;  // thief-side pass is already the parallel unit
  reason::ForwardEngine engine(store, rule_base_, fopts);
  return engine.match_delta(lo, hi);
}

std::size_t Worker::ship_steal_results(
    std::uint32_t victim_id,
    std::span<const reason::ForwardEngine::Derivation> derivations,
    std::vector<SentRecord>* sent) {
  RoundStats& rs = round_stats(0);
  util::Stopwatch io_watch;
  std::size_t shipped = 0;

  // Everything returns to the victim: the derivations are *its* closure
  // work, it must re-evaluate them against its rules (they are new
  // frontier there) and own the per-rule firing credit.
  Batch back;
  back.to = victim_id;
  back.kind = BatchKind::kStealResult;
  back.tuples.reserve(derivations.size());
  for (const auto& d : derivations) {
    back.tuples.push_back(d.triple);
  }

  // Plus the ordinary routed copies, computed with the VICTIM's partition
  // id — the placement rule is per-owner, and these tuples belong to the
  // victim's partition.
  std::unordered_map<std::uint32_t, std::vector<rdf::Triple>> outgoing;
  std::vector<std::uint32_t> destinations;
  for (const auto& d : derivations) {
    destinations.clear();
    router_->route(d.triple, victim_id, destinations);
    for (const std::uint32_t dest : destinations) {
      if (dest != victim_id) {  // the kStealResult envelope covers the victim
        outgoing[dest].push_back(d.triple);
      }
    }
  }

  if (!back.tuples.empty()) {
    shipped += back.tuples.size();
    ship_async(std::move(back), sent);
    rs.sent_messages += 1;
  }
  std::vector<Outgoing> batches;
  batches.reserve(outgoing.size());
  for (auto& [dest, tuples] : outgoing) {
    batches.push_back(Outgoing{dest, std::move(tuples)});
  }
  std::sort(batches.begin(), batches.end(),
            [](const Outgoing& a, const Outgoing& b) {
              return a.dest < b.dest;
            });
  for (Outgoing& out : batches) {
    Batch batch;
    batch.to = out.dest;
    batch.kind = BatchKind::kData;
    batch.tuples = std::move(out.tuples);
    shipped += batch.tuples.size();
    ship_async(std::move(batch), sent);
    rs.sent_messages += 1;
  }
  rs.io_seconds += io_watch.elapsed_seconds();
  rs.sent_tuples += shipped;
  return shipped;
}

void Worker::send_token(std::uint32_t to, std::uint32_t epoch, bool black,
                        std::vector<SentRecord>* sent) {
  Batch token;
  token.to = to;
  token.kind = BatchKind::kToken;
  token.token_epoch = epoch;
  token.token_black = black;
  ship_async(std::move(token), sent);
  RoundStats& rs = round_stats(0);
  rs.sent_messages += 1;
}

std::size_t Worker::retransmit_unacked_async(const AckBoard& board) {
  RoundStats& rs = round_stats(0);
  std::erase_if(pending_,
                [&](const Batch& b) { return board.acked(b.id()); });
  std::size_t resent = 0;
  util::Stopwatch io_watch;
  for (Batch& batch : pending_) {
    batch.attempt += 1;
    transport_->send_batch(batch);
    rs.retransmitted += 1;
    resent += 1;
  }
  rs.io_seconds += io_watch.elapsed_seconds();
  PAROWL_COUNT("parallel.retransmissions", resent);
  return resent;
}

std::size_t Worker::release_acked(const AckBoard& board) {
  std::erase_if(pending_,
                [&](const Batch& b) { return board.acked(b.id()); });
  if (log_outbox_) {
    for (OutboxEntry& e : outbox_) {
      if (e.acked_ck < 0 && board.acked(e.batch.id())) {
        e.acked_ck = ckpt_count_;
      }
    }
  }
  return pending_.size();
}

std::size_t Worker::resend_outbox(std::vector<SentRecord>* sent) {
  // Crash recovery: re-ship every retained envelope.  Receivers that
  // already absorbed one deduplicate by batch id; receivers restored from
  // an older cut genuinely need it.
  std::size_t resent = 0;
  for (const OutboxEntry& e : outbox_) {
    Batch copy = e.batch;
    if (sent != nullptr) {
      sent->push_back(SentRecord{copy.id(), copy.tuples.size()});
    }
    pending_.push_back(copy);
    transport_->send_batch(std::move(copy));
    resent += 1;
  }
  return resent;
}

void Worker::prune_outbox() {
  // Called once per checkpoint.  An entry acked before the PREVIOUS
  // checkpoint is safe to drop: termination probes are strictly
  // sequential, so every receiver's epoch-(k-1) cut happens-after the ack
  // and therefore contains the payload durably.  Entries acked since then
  // ride along one more checkpoint.
  ckpt_count_ += 1;
  std::erase_if(outbox_, [&](const OutboxEntry& e) {
    return e.acked_ck >= 0 && e.acked_ck < ckpt_count_ - 1;
  });
}

// -- Checkpointing ----------------------------------------------------
//
// Format (binary, little-endian on every supported target):
//   magic "POWC" | u32 version | u32 worker id | u32 round
//   u64 base_size | u64 frontier | u64 route_mark
//   u64 ntriples | codec triple blocks (delta varints + block checksums)
//   u64 nseen    | nseen * u64
//   u64 nrounds  | nrounds * RoundStats (4 x f64, 8 x u64)
//   u64 nrules   | nrules * u64
//   u32 send_seq | u64 noutbox | noutbox * outbox entry
//   u64 digest   (mix64 chain over every field above)
// Version 2 replaced the fixed 3 x u32 triple records with the shared
// compact codec (rdf/codec.hpp).  Version 3 adds the async executor's
// sender state: the monotonic send sequence and the outbox log (each
// entry: u32 to | u32 kind | u32 round=sender-seq | u64 ntuples | codec
// triple blocks), so a recovered worker can resend in-flight envelopes.
// In async runs the `round` header field holds the termination-token
// epoch of the cut.  The digest is computed over *decoded* values, so it
// survives format changes unchanged: a torn or bit-flipped file fails the
// magic/block-checksum/digest check on load.

namespace {

constexpr std::uint32_t kCkptMagic = 0x43574F50;  // "POWC"
constexpr std::uint32_t kCkptVersion = 3;
/// Gap added to send_seq_ (and by the executor to the probe-epoch base)
/// on checkpoint load, so post-recovery batch ids and token epochs can
/// never collide with in-flight pre-crash ones.
constexpr std::uint32_t kRecoverySeqGap = 1u << 20;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool get(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

void put_stats(std::ostream& out, const RoundStats& rs) {
  put(out, rs.reason_seconds);
  put(out, rs.io_seconds);
  put(out, rs.sync_seconds);
  put(out, rs.aggregate_seconds);
  put(out, static_cast<std::uint64_t>(rs.derived));
  put(out, static_cast<std::uint64_t>(rs.sent_tuples));
  put(out, static_cast<std::uint64_t>(rs.sent_messages));
  put(out, static_cast<std::uint64_t>(rs.received_tuples));
  put(out, static_cast<std::uint64_t>(rs.received_new));
  put(out, static_cast<std::uint64_t>(rs.retransmitted));
  put(out, static_cast<std::uint64_t>(rs.redelivered));
  put(out, static_cast<std::uint64_t>(rs.corrupt_batches));
}

bool get_stats(std::istream& in, RoundStats& rs) {
  std::uint64_t u = 0;
  bool ok = get(in, rs.reason_seconds) && get(in, rs.io_seconds) &&
            get(in, rs.sync_seconds) && get(in, rs.aggregate_seconds);
  auto load_size = [&](std::size_t& field) {
    ok = ok && get(in, u);
    field = static_cast<std::size_t>(u);
  };
  load_size(rs.derived);
  load_size(rs.sent_tuples);
  load_size(rs.sent_messages);
  load_size(rs.received_tuples);
  load_size(rs.received_new);
  load_size(rs.retransmitted);
  load_size(rs.redelivered);
  load_size(rs.corrupt_batches);
  return ok;
}

/// Chained digest over every serialized field, so a bit flip anywhere in
/// the file — header, log, seen ids, stats, firings — fails validation.
class CkptDigest {
 public:
  void add(std::uint64_t v) { d_ = mix64(d_ ^ v); }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return d_; }

 private:
  std::uint64_t d_ = 0x243f6a8885a308d3ULL;
};

/// Wire fields of one outbox entry, pre-extracted for digesting/encoding.
struct OutboxWire {
  std::uint32_t to = 0;
  std::uint32_t kind = 0;
  std::uint32_t round = 0;  // the sender's monotonic sequence
  std::vector<rdf::Triple> tuples;
};

std::uint64_t state_digest(std::uint32_t id, std::uint32_t round,
                           std::uint64_t base_size, std::uint64_t frontier,
                           std::uint64_t route_mark,
                           std::span<const rdf::Triple> log,
                           std::span<const std::uint64_t> seen_in_order,
                           std::span<const RoundStats> stats,
                           std::span<const std::size_t> firings,
                           std::uint32_t send_seq,
                           std::span<const OutboxWire> outbox) {
  CkptDigest acc;
  acc.add((static_cast<std::uint64_t>(id) << 32) | round);
  acc.add(base_size);
  acc.add(frontier);
  acc.add(route_mark);
  acc.add(static_cast<std::uint64_t>(log.size()));
  for (const rdf::Triple& t : log) {
    acc.add(triple_digest(t));
  }
  acc.add(static_cast<std::uint64_t>(seen_in_order.size()));
  for (const std::uint64_t b : seen_in_order) {
    acc.add(b);
  }
  acc.add(static_cast<std::uint64_t>(stats.size()));
  for (const RoundStats& rs : stats) {
    acc.add(rs.reason_seconds);
    acc.add(rs.io_seconds);
    acc.add(rs.sync_seconds);
    acc.add(rs.aggregate_seconds);
    acc.add(static_cast<std::uint64_t>(rs.derived));
    acc.add(static_cast<std::uint64_t>(rs.sent_tuples));
    acc.add(static_cast<std::uint64_t>(rs.sent_messages));
    acc.add(static_cast<std::uint64_t>(rs.received_tuples));
    acc.add(static_cast<std::uint64_t>(rs.received_new));
    acc.add(static_cast<std::uint64_t>(rs.retransmitted));
    acc.add(static_cast<std::uint64_t>(rs.redelivered));
    acc.add(static_cast<std::uint64_t>(rs.corrupt_batches));
  }
  acc.add(static_cast<std::uint64_t>(firings.size()));
  for (const std::size_t f : firings) {
    acc.add(static_cast<std::uint64_t>(f));
  }
  acc.add(static_cast<std::uint64_t>(send_seq));
  acc.add(static_cast<std::uint64_t>(outbox.size()));
  for (const OutboxWire& e : outbox) {
    acc.add((static_cast<std::uint64_t>(e.to) << 40) |
            (static_cast<std::uint64_t>(e.kind) << 36) | e.round);
    acc.add(static_cast<std::uint64_t>(e.tuples.size()));
    for (const rdf::Triple& t : e.tuples) {
      acc.add(triple_digest(t));
    }
  }
  return acc.value();
}

}  // namespace

void Worker::save_checkpoint(std::ostream& out, std::uint32_t round) const {
  put(out, kCkptMagic);
  put(out, kCkptVersion);
  put(out, id_);
  put(out, round);
  put(out, static_cast<std::uint64_t>(base_size_));
  put(out, static_cast<std::uint64_t>(frontier_));
  put(out, static_cast<std::uint64_t>(route_mark_));

  const auto& log = store_.triples();
  put(out, static_cast<std::uint64_t>(log.size()));
  rdf::codec::write_blocks(out, log);

  // Sorted so identical state produces byte-identical checkpoints.
  std::vector<std::uint64_t> seen(seen_batches_.begin(), seen_batches_.end());
  std::sort(seen.begin(), seen.end());
  put(out, static_cast<std::uint64_t>(seen.size()));
  for (const std::uint64_t b : seen) {
    put(out, b);
  }

  put(out, static_cast<std::uint64_t>(rounds_.size()));
  for (const RoundStats& rs : rounds_) {
    put_stats(out, rs);
  }

  put(out, static_cast<std::uint64_t>(rule_firings_.size()));
  for (const std::size_t f : rule_firings_) {
    put(out, static_cast<std::uint64_t>(f));
  }

  put(out, send_seq_);
  std::vector<OutboxWire> outbox;
  outbox.reserve(outbox_.size());
  for (const OutboxEntry& e : outbox_) {
    outbox.push_back(OutboxWire{e.batch.to,
                                static_cast<std::uint32_t>(e.batch.kind),
                                e.batch.round, e.batch.tuples});
  }
  put(out, static_cast<std::uint64_t>(outbox.size()));
  for (const OutboxWire& e : outbox) {
    put(out, e.to);
    put(out, e.kind);
    put(out, e.round);
    put(out, static_cast<std::uint64_t>(e.tuples.size()));
    rdf::codec::write_blocks(out, e.tuples);
  }

  put(out, state_digest(id_, round, base_size_, frontier_, route_mark_, log,
                        seen, rounds_, rule_firings_, send_seq_, outbox));
}

bool Worker::load_checkpoint(std::istream& in, std::uint32_t* round,
                             std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    store_.clear();
    base_size_ = frontier_ = route_mark_ = 0;
    rounds_.clear();
    rule_firings_.clear();
    seen_batches_.clear();
    return false;
  };

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t saved_id = 0;
  std::uint32_t saved_round = 0;
  if (!get(in, magic) || magic != kCkptMagic) {
    return fail("bad checkpoint magic");
  }
  if (!get(in, version) || version != kCkptVersion) {
    return fail("unsupported checkpoint version");
  }
  if (!get(in, saved_id) || saved_id != id_) {
    return fail("checkpoint belongs to a different worker");
  }
  if (!get(in, saved_round)) {
    return fail("truncated checkpoint header");
  }

  std::uint64_t base = 0;
  std::uint64_t frontier = 0;
  std::uint64_t route_mark = 0;
  if (!get(in, base) || !get(in, frontier) || !get(in, route_mark)) {
    return fail("truncated checkpoint header");
  }

  std::uint64_t ntriples = 0;
  if (!get(in, ntriples)) {
    return fail("truncated checkpoint (triple count)");
  }
  std::vector<rdf::Triple> log;
  log.reserve(static_cast<std::size_t>(ntriples));
  if (!rdf::codec::read_blocks(
          in, ntriples, [&log](const rdf::Triple& t) { log.push_back(t); })) {
    return fail("truncated checkpoint (triples)");
  }

  std::uint64_t nseen = 0;
  if (!get(in, nseen)) {
    return fail("truncated checkpoint (seen count)");
  }
  std::vector<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nseen));
  for (std::uint64_t i = 0; i < nseen; ++i) {
    std::uint64_t b = 0;
    if (!get(in, b)) {
      return fail("truncated checkpoint (seen ids)");
    }
    seen.push_back(b);
  }

  std::uint64_t nrounds = 0;
  if (!get(in, nrounds)) {
    return fail("truncated checkpoint (round count)");
  }
  std::vector<RoundStats> stats(static_cast<std::size_t>(nrounds));
  for (RoundStats& rs : stats) {
    if (!get_stats(in, rs)) {
      return fail("truncated checkpoint (round stats)");
    }
  }

  std::uint64_t nrules = 0;
  if (!get(in, nrules)) {
    return fail("truncated checkpoint (rule count)");
  }
  std::vector<std::size_t> firings(static_cast<std::size_t>(nrules));
  for (std::size_t& f : firings) {
    std::uint64_t u = 0;
    if (!get(in, u)) {
      return fail("truncated checkpoint (rule firings)");
    }
    f = static_cast<std::size_t>(u);
  }

  std::uint32_t send_seq = 0;
  if (!get(in, send_seq)) {
    return fail("truncated checkpoint (send sequence)");
  }
  std::uint64_t noutbox = 0;
  if (!get(in, noutbox)) {
    return fail("truncated checkpoint (outbox count)");
  }
  std::vector<OutboxWire> outbox;
  outbox.reserve(static_cast<std::size_t>(noutbox));
  for (std::uint64_t i = 0; i < noutbox; ++i) {
    OutboxWire e;
    std::uint64_t ntuples = 0;
    if (!get(in, e.to) || !get(in, e.kind) || !get(in, e.round) ||
        !get(in, ntuples) ||
        e.kind > static_cast<std::uint32_t>(BatchKind::kStealResult)) {
      return fail("truncated checkpoint (outbox entry)");
    }
    e.tuples.reserve(static_cast<std::size_t>(ntuples));
    if (!rdf::codec::read_blocks(in, ntuples, [&e](const rdf::Triple& t) {
          e.tuples.push_back(t);
        })) {
      return fail("truncated checkpoint (outbox tuples)");
    }
    outbox.push_back(std::move(e));
  }

  std::uint64_t digest = 0;
  if (!get(in, digest)) {
    return fail("truncated checkpoint (digest)");
  }
  if (digest != state_digest(id_, saved_round, base, frontier, route_mark,
                             log, seen, stats, firings, send_seq, outbox)) {
    return fail("checkpoint digest mismatch (torn or damaged file)");
  }

  store_.clear();
  store_.insert_all(log);
  if (store_.size() != log.size()) {
    return fail("checkpoint log contained duplicate triples");
  }
  base_size_ = static_cast<std::size_t>(base);
  frontier_ = static_cast<std::size_t>(frontier);
  route_mark_ = static_cast<std::size_t>(route_mark);
  rounds_ = std::move(stats);
  rule_firings_ = std::move(firings);
  seen_batches_.clear();
  seen_batches_.insert(seen.begin(), seen.end());
  pending_.clear();
  stash_.clear();
  // Restore the async sender state with a sequence gap: every batch id
  // minted after recovery is distinct from anything in flight pre-crash,
  // so stale envelopes can only ever be deduplicated, never confused.
  send_seq_ = send_seq + kRecoverySeqGap;
  outbox_.clear();
  for (OutboxWire& e : outbox) {
    Batch b;
    b.from = id_;
    b.to = e.to;
    b.kind = static_cast<BatchKind>(e.kind);
    b.round = e.round;
    b.seq = 0;
    b.tuples = std::move(e.tuples);
    b.checksum = batch_checksum(b.tuples);
    outbox_.push_back(OutboxEntry{std::move(b), -1});
  }
  ckpt_count_ = 0;
  if (round != nullptr) {
    *round = saved_round;
  }
  return true;
}

}  // namespace parowl::parallel
