#include "parowl/parallel/worker.hpp"

#include <unordered_map>

#include "parowl/reason/forward.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {

Worker::Worker(std::uint32_t id, rules::RuleSet rule_base,
               std::shared_ptr<const Router> router, Transport* transport,
               WorkerOptions options)
    : id_(id),
      rule_base_(std::move(rule_base)),
      router_(std::move(router)),
      transport_(transport),
      options_(options) {}

void Worker::load(std::span<const rdf::Triple> base) {
  store_.insert_all(base);
  base_size_ = store_.size();
  frontier_ = 0;  // everything is new for the first closure
  route_mark_ = store_.size();  // base tuples are never shipped
}

std::vector<Outgoing> Worker::compute_local(double* compute_seconds) {
  // (a) Local closure from the frontier.
  util::Stopwatch reason_watch;
  if (options_.strategy == reason::Strategy::kForward) {
    reason::ForwardOptions fopts;
    fopts.dict = options_.dict;
    fopts.threads = options_.reason_threads;
    reason::ForwardEngine(store_, rule_base_, fopts).run(frontier_);
  } else {
    // Incremental after round 0: only resources affected by newly received
    // tuples are re-queried (frontier_ == 0 falls back to a full run).
    reason::query_driven_closure_delta(store_, *options_.dict, rule_base_,
                                       frontier_, options_.share_tables);
  }
  if (compute_seconds != nullptr) {
    *compute_seconds = reason_watch.elapsed_seconds();
  }
  frontier_ = store_.size();

  // (b) Route fresh derivations.
  std::unordered_map<std::uint32_t, std::vector<rdf::Triple>> outgoing;
  std::vector<std::uint32_t> destinations;
  for (std::size_t i = route_mark_; i < store_.size(); ++i) {
    const rdf::Triple& t = store_.triples()[i];
    destinations.clear();
    router_->route(t, id_, destinations);
    for (const std::uint32_t dest : destinations) {
      outgoing[dest].push_back(t);
    }
  }
  route_mark_ = store_.size();

  std::vector<Outgoing> batches;
  batches.reserve(outgoing.size());
  for (auto& [dest, tuples] : outgoing) {
    batches.push_back(Outgoing{dest, std::move(tuples)});
  }
  return batches;
}

std::size_t Worker::absorb(std::span<const rdf::Triple> tuples) {
  // frontier_ is NOT advanced here: it marks the first log index the next
  // closure must consume, which may include tuples from an earlier absorb
  // that no compute has processed yet.
  std::size_t fresh = 0;
  for (const rdf::Triple& t : tuples) {
    fresh += store_.insert(t) ? 1 : 0;
  }
  // Foreign derivations are never re-shipped, only reasoned over.
  route_mark_ = store_.size();
  return fresh;
}

std::size_t Worker::compute_and_send(std::uint32_t round) {
  if (rounds_.size() <= round) {
    rounds_.resize(round + 1);
  }
  RoundStats& rs = rounds_[round];

  const std::size_t before = store_.size();
  double compute_seconds = 0.0;
  const std::vector<Outgoing> batches = compute_local(&compute_seconds);
  rs.reason_seconds += compute_seconds;
  rs.derived += store_.size() - before;

  std::size_t sent = 0;
  util::Stopwatch io_watch;
  for (const Outgoing& batch : batches) {
    transport_->send(id_, batch.dest, round, batch.tuples);
    sent += batch.tuples.size();
    rs.sent_messages += 1;
  }
  rs.io_seconds += io_watch.elapsed_seconds();
  rs.sent_tuples += sent;
  return sent;
}

std::size_t Worker::receive_and_aggregate(std::uint32_t round) {
  if (rounds_.size() <= round) {
    rounds_.resize(round + 1);
  }
  RoundStats& rs = rounds_[round];

  util::Stopwatch io_watch;
  const std::vector<rdf::Triple> incoming = transport_->receive(id_, round);
  rs.io_seconds += io_watch.elapsed_seconds();
  rs.received_tuples += incoming.size();

  util::Stopwatch agg_watch;
  const std::size_t fresh = absorb(incoming);
  rs.aggregate_seconds += agg_watch.elapsed_seconds();
  rs.received_new += fresh;
  return fresh;
}

}  // namespace parowl::parallel
