#include "parowl/parallel/pipeline.hpp"

#include <cassert>
#include <stdexcept>
#include <memory>
#include <unordered_set>

#include "parowl/obs/obs.hpp"
#include "parowl/ontology/ontology.hpp"
#include "parowl/rules/dependency_graph.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::parallel {
namespace {

/// One prepared worker: its rule-base, router, and base data.
struct WorkerPlan {
  rules::RuleSet rule_base;
  std::shared_ptr<const Router> router;
  const std::vector<rdf::Triple>* base = nullptr;
};

/// Everything the partitioning step produces.
struct Plan {
  std::vector<WorkerPlan> workers;
  std::optional<partition::PartitionMetrics> metrics;
  double partition_seconds = 0.0;
  // Owned storage for the bases the WorkerPlans point into.
  std::vector<std::vector<rdf::Triple>> data_parts;
  std::vector<rdf::Triple> full_instance;
};

/// Misuse checks: these are programming errors in the caller, surfaced as
/// exceptions because asserts vanish in release builds.
void validate(const ParallelOptions& options) {
  if (options.partitions == 0) {
    throw std::invalid_argument("ParallelOptions.partitions must be >= 1");
  }
  if (options.approach != Approach::kRulePartition &&
      options.policy == nullptr) {
    throw std::invalid_argument(
        "data/hybrid partitioning requires ParallelOptions.policy");
  }
  if (options.approach == Approach::kHybrid &&
      options.rule_partitions == 0) {
    throw std::invalid_argument(
        "hybrid partitioning requires rule_partitions >= 1");
  }
  if (options.mode == ExecutionMode::kAsyncSimulated &&
      options.transport != nullptr) {
    throw std::invalid_argument(
        "the async executor owns delivery; an external transport cannot "
        "be combined with kAsyncSimulated");
  }
}

Plan make_plan(const rdf::TripleStore& store, const rdf::Dictionary& dict,
               const ontology::Vocabulary& vocab,
               const rules::CompiledRules& compiled,
               const ParallelOptions& options) {
  Plan plan;

  if (options.approach == Approach::kDataPartition) {
    partition::DataPartitioning dp = partition::partition_data(
        store, dict, vocab, *options.policy, options.partitions);
    plan.partition_seconds = dp.partition_seconds;
    plan.metrics = partition::compute_partition_metrics(dp, dict);
    plan.data_parts = std::move(dp.parts);

    const auto router = std::make_shared<OwnerRouter>(std::move(dp.owners));
    for (std::uint32_t p = 0; p < options.partitions; ++p) {
      plan.workers.push_back(
          WorkerPlan{compiled.rules, router, &plan.data_parts[p]});
    }
    return plan;
  }

  if (options.approach == Approach::kRulePartition) {
    util::Stopwatch watch;
    const rdf::TripleStore* stats =
        options.rule_statistics != nullptr ? options.rule_statistics : &store;
    const rules::DependencyGraph dep = rules::build_dependency_graph(
        compiled.rules, options.weighted_rule_graph ? stats : nullptr);
    partition::RulePartitioning rp = partition::partition_rules(
        compiled.rules, dep, options.partitions);
    plan.partition_seconds = watch.elapsed_seconds();

    // Rule partitioning applies each rule subset to the *complete*
    // instance data-set (§III-B).
    plan.full_instance = ontology::split_schema(store, vocab).instance;
    const auto router = std::make_shared<RuleMatchRouter>(rp.parts);
    for (std::uint32_t p = 0; p < options.partitions; ++p) {
      plan.workers.push_back(WorkerPlan{std::move(rp.parts[p]), router,
                                        &plan.full_instance});
    }
    return plan;
  }

  // Hybrid: split both.  Worker (d, j) = id d * rule_partitions + j.
  util::Stopwatch watch;
  partition::DataPartitioning dp = partition::partition_data(
      store, dict, vocab, *options.policy, options.partitions);
  plan.metrics = partition::compute_partition_metrics(dp, dict);
  plan.data_parts = std::move(dp.parts);

  const rdf::TripleStore* stats =
      options.rule_statistics != nullptr ? options.rule_statistics : &store;
  const rules::DependencyGraph dep = rules::build_dependency_graph(
      compiled.rules, options.weighted_rule_graph ? stats : nullptr);
  partition::RulePartitioning rp = partition::partition_rules(
      compiled.rules, dep, options.rule_partitions);
  plan.partition_seconds = watch.elapsed_seconds();

  const auto router =
      std::make_shared<HybridRouter>(std::move(dp.owners), rp.parts);
  for (std::uint32_t d = 0; d < options.partitions; ++d) {
    for (std::uint32_t j = 0; j < options.rule_partitions; ++j) {
      plan.workers.push_back(
          WorkerPlan{rp.parts[j], router, &plan.data_parts[d]});
    }
  }
  return plan;
}

}  // namespace

ParallelResult parallel_materialize(const rdf::TripleStore& store,
                                    const rdf::Dictionary& dict,
                                    const ontology::Vocabulary& vocab,
                                    const ParallelOptions& options) {
  validate(options);
  obs::configure(options.obs);
  PAROWL_SPAN("parallel.materialize", {{"partitions", options.partitions}});
  ParallelResult result;

  // Master: compile the ontology once; the same rule-base (or its
  // partition) is shipped to every node.
  const rules::CompiledRules compiled =
      reason::compile_ontology(store, vocab, options.horst);
  result.compiled_rules = compiled.rules.size();

  Plan plan = make_plan(store, dict, vocab, compiled, options);
  result.metrics = plan.metrics;
  result.partition_seconds = plan.partition_seconds;

  WorkerOptions wopts;
  wopts.strategy = options.local_strategy;
  wopts.dict = &dict;

  // Run under the chosen executor.
  const auto num_workers = static_cast<std::uint32_t>(plan.workers.size());
  std::vector<const Worker*> workers;

  std::unique_ptr<Transport> owned_transport;
  std::unique_ptr<FaultyTransport> faulty;
  std::optional<Cluster> cluster;
  std::optional<AsyncSimulator> async;

  if (options.mode == ExecutionMode::kAsyncSimulated) {
    async.emplace(num_workers, options.network, options.faults);
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      async->add_worker(std::move(plan.workers[w].rule_base),
                        plan.workers[w].router, wopts);
      async->load(w, *plan.workers[w].base);
    }
    result.async = async->run();
    result.cluster.simulated_seconds = result.async->simulated_seconds;
    result.cluster.sync_seconds = result.async->wait_seconds;
    result.cluster.results_per_partition =
        result.async->results_per_partition;
    result.cluster.union_results = result.async->union_results;
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      workers.push_back(&async->worker(w));
    }
  } else {
    Transport* transport = options.transport;
    if (transport == nullptr) {
      owned_transport = std::make_unique<MemoryTransport>(num_workers);
      transport = owned_transport.get();
    }
    if (options.faults != nullptr) {
      faulty = std::make_unique<FaultyTransport>(*transport, *options.faults);
      transport = faulty.get();
    }
    ClusterOptions copts;
    copts.mode = options.mode;
    copts.network = options.network;
    copts.checkpoint = options.checkpoint;
    copts.fault_tolerance = options.fault_tolerance;
    copts.async = options.async_exec;
    copts.obs = options.obs;
    cluster.emplace(*transport, copts);
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      cluster->add_worker(std::move(plan.workers[w].rule_base),
                          plan.workers[w].router, wopts);
      cluster->load(w, *plan.workers[w].base);
    }
    result.cluster = cluster->run();
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      workers.push_back(&cluster->worker(w));
    }
  }

  result.output_replication = partition::output_replication(
      result.cluster.results_per_partition, result.cluster.union_results);

  // Merge: input ∪ schema ground facts ∪ all worker results (master-side
  // aggregation; timed for the Fig. 2 breakdown).
  util::Stopwatch merge_watch;
  std::unordered_set<rdf::Triple, rdf::TripleHash> baseline(
      store.triples().begin(), store.triples().end());
  std::size_t inferred = 0;
  std::unordered_set<rdf::Triple, rdf::TripleHash> seen;
  auto count_new = [&](const rdf::Triple& t) {
    if (!baseline.contains(t) && seen.insert(t).second) {
      ++inferred;
    }
  };
  for (const rdf::Triple& t : compiled.ground_facts) {
    count_new(t);
  }
  for (const Worker* worker : workers) {
    const auto& log = worker->store().triples();
    for (std::size_t i = worker->base_size(); i < log.size(); ++i) {
      count_new(log[i]);
    }
  }
  result.inferred = inferred;

  if (options.build_merged) {
    rdf::TripleStore merged;
    merged.insert_all(store.triples());
    merged.insert_all(compiled.ground_facts);
    for (const Worker* worker : workers) {
      merged.insert_all(worker->store().triples());
    }
    result.merged.emplace(std::move(merged));
  }
  result.merge_seconds = merge_watch.elapsed_seconds();
  return result;
}

}  // namespace parowl::parallel
