#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "parowl/obs/report.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::parallel {

/// Per-partition communication counters, separated by direction.  The
/// cluster uses `seconds` for the Fig. 2 "IO" component and `bytes` for the
/// simulated-network model.  For FileTransport the byte counters are true
/// bytes-on-wire (the codec-encoded envelope size as written/read);
/// MemoryTransport counts raw in-process tuple bytes, since nothing is
/// encoded.  The protocol counters (retries, redeliveries, checksum
/// failures) are filled by the ack/retry layer: retries by the transport
/// itself (it sees attempt > 0 on send), the receiver-side pair by the
/// worker via note_redelivery / note_checksum_failure.
struct CommStats {
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t retries = 0;             // batch retransmissions sent
  std::uint64_t redeliveries = 0;        // duplicate batches discarded by id
  std::uint64_t checksum_failures = 0;   // corrupt batches detected

  void merge(const CommStats& other) {
    send_seconds += other.send_seconds;
    recv_seconds += other.recv_seconds;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    messages_sent += other.messages_sent;
    retries += other.retries;
    redeliveries += other.redeliveries;
    checksum_failures += other.checksum_failures;
  }
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const CommStats& s);

/// SplitMix64 finalizer — the avalanche behind every checksum and every
/// deterministic fault decision in this layer.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Uniform double in [0, 1) from a hash value.
[[nodiscard]] double hash_unit(std::uint64_t h);

/// Content digest of one triple (SplitMix64 over the packed ids).
[[nodiscard]] std::uint64_t triple_digest(const rdf::Triple& t);

/// Order-insensitive batch checksum: wrapping sum of triple digests.  The
/// closure is a set, so a reordered batch is *not* corrupt; a batch with a
/// mutated, missing, or extra tuple is.
[[nodiscard]] std::uint64_t batch_checksum(std::span<const rdf::Triple> tuples);

/// Globally unique batch identity: (from, to, round, seq) packed into 64
/// bits.  Receivers deduplicate redeliveries by this id; retransmissions of
/// the same batch carry the same id with a higher attempt number.
[[nodiscard]] constexpr std::uint64_t make_batch_id(std::uint32_t from,
                                                    std::uint32_t to,
                                                    std::uint32_t round,
                                                    std::uint32_t seq) {
  return (static_cast<std::uint64_t>(from) << 54) |
         (static_cast<std::uint64_t>(to) << 44) |
         (static_cast<std::uint64_t>(seq & 0xff) << 36) |
         (static_cast<std::uint64_t>(round) & 0xfffffffffULL);
}

/// What an envelope carries.  kData is an ordinary delta batch; kToken is a
/// termination-detection probe (empty tuple payload, token_* fields live);
/// kStealResult returns the derivations a thief computed over a stolen
/// frontier shard to the shard's owner, who absorbs them like foreign
/// deltas.  Tokens ride the same ack'd envelopes as data, so drop/dup/delay
/// faults are already handled by the retry layer — and their payload is
/// empty, so the corrupt fault (which mutates tuples) cannot touch them.
enum class BatchKind : std::uint8_t { kData = 0, kToken = 1, kStealResult = 2 };

/// Wire envelope: one tuple batch plus the identity and integrity metadata
/// the ack/retry protocol needs.
struct Batch {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t round = 0;
  std::uint32_t seq = 0;      // per-(from, to, round) sequence number
  std::uint32_t attempt = 0;  // 0 = first transmission
  std::uint64_t checksum = 0; // batch_checksum(tuples) at send time
  BatchKind kind = BatchKind::kData;
  /// Termination-token payload (kToken only): the probe epoch, the
  /// Dijkstra color, and a spare counter field for protocol extensions.
  std::uint32_t token_epoch = 0;
  std::int64_t token_count = 0;
  bool token_black = false;
  /// False when the transport could not even reconstruct the envelope
  /// (torn file, unparsable payload); treated as a checksum failure.
  bool intact = true;
  std::vector<rdf::Triple> tuples;

  [[nodiscard]] std::uint64_t id() const {
    return make_batch_id(from, to, round, seq);
  }
};

/// Shared acknowledgement board: receivers post the ids of batches they
/// have validated and stored; senders retransmit what is still missing.
/// This is the in-process stand-in for ack messages flowing back over the
/// network — the executor owns it and hands it to every worker of a round.
class AckBoard {
 public:
  void ack(std::uint64_t batch_id) {
    const std::scoped_lock lock(mutex_);
    acked_.insert(batch_id);
  }
  [[nodiscard]] bool acked(std::uint64_t batch_id) const {
    const std::scoped_lock lock(mutex_);
    return acked_.contains(batch_id);
  }
  void clear() {
    const std::scoped_lock lock(mutex_);
    acked_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_set<std::uint64_t> acked_;
};

/// Injected-fault counters of a FaultyTransport (all zero elsewhere).
struct FaultLog {
  std::uint64_t attempts = 0;     // batch transmissions observed
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t reorders = 0;

  [[nodiscard]] std::uint64_t total() const {
    return drops + duplicates + corruptions + delays + reorders;
  }
};

[[nodiscard]] obs::FieldList fields(const FaultLog& log);

/// Inter-partition tuple exchange.  Usage is round-synchronous: every
/// worker `send_batch`es all its round-r envelopes, the executor barriers,
/// then every worker drains its round-r inbox with `receive_batches` —
/// possibly several times per round, as the ack/retry delivery loop
/// re-polls after retransmissions.  Implementations must allow concurrent
/// calls from distinct workers.
class Transport {
 public:
  explicit Transport(std::uint32_t num_partitions);
  virtual ~Transport() = default;

  /// Ship one envelope.  The transport may observe `attempt` for retry
  /// accounting but must deliver retransmissions like first transmissions.
  virtual void send_batch(Batch batch) = 0;

  /// Drain every envelope currently available for (`to`, `round`).  Unlike
  /// the tuple-level receive, this may be called repeatedly per round; each
  /// envelope is returned exactly once.
  virtual std::vector<Batch> receive_batches(std::uint32_t to,
                                             std::uint32_t round) = 0;

  /// Drain every envelope currently available for `to`, regardless of
  /// round — the asynchronous executors poll with this, since async senders
  /// stamp envelopes with a monotonic sequence rather than a shared round.
  /// Default implementation refuses: round-synchronous-only transports
  /// (e.g. test doubles) need not support it.
  virtual std::vector<Batch> receive_all(std::uint32_t to) {
    (void)to;
    throw std::logic_error(name() + " transport does not support receive_all");
  }

  /// Tuple-level convenience wrappers (sequence numbers assigned
  /// internally; payload integrity still checked on receive, corrupt
  /// batches dropped with a warning rather than returned).
  void send(std::uint32_t from, std::uint32_t to, std::uint32_t round,
            std::span<const rdf::Triple> tuples);
  std::vector<rdf::Triple> receive(std::uint32_t to, std::uint32_t round);

  /// Communication counters for one partition (accumulated over rounds).
  [[nodiscard]] virtual CommStats stats(std::uint32_t partition) const;

  /// Receiver-side protocol accounting: the worker — not the transport —
  /// decides that an envelope is a redelivery or corrupt, and records the
  /// verdict here so CommStats reconciles with the fault schedule.
  void note_redelivery(std::uint32_t to);
  void note_checksum_failure(std::uint32_t to);

  /// Fault-injection counters; zero unless this is a FaultyTransport.
  [[nodiscard]] virtual FaultLog injected_faults() const { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(stats_.size());
  }

 protected:
  [[nodiscard]] CommStats& stats_for(std::uint32_t partition) {
    return stats_[partition];
  }
  mutable std::mutex stats_mutex_;

 private:
  std::vector<CommStats> stats_;
  // Sequence counters for the tuple-level send wrapper.
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::uint32_t>
      wrapper_seq_;
};

/// Shared-memory transport: per-destination mailboxes under a mutex.  This
/// stands in for "a more efficient communication mechanism like MPI" that
/// §VI-B says would shrink the IO share — and is what the paper itself
/// switched to for the rule-partitioning experiments.
class MemoryTransport final : public Transport {
 public:
  explicit MemoryTransport(std::uint32_t num_partitions);

  void send_batch(Batch batch) override;
  std::vector<Batch> receive_batches(std::uint32_t to,
                                     std::uint32_t round) override;
  std::vector<Batch> receive_all(std::uint32_t to) override;
  [[nodiscard]] std::string name() const override { return "memory"; }

  /// Envelopes still sitting in mailboxes (test introspection).
  [[nodiscard]] std::size_t pending_batches() const;

 private:
  mutable std::mutex mutex_;
  // (to, round) -> envelopes awaiting receive.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Batch>>
      mailboxes_;
};

/// Shared-filesystem transport, as in the paper's implementation (§V): each
/// envelope becomes a file "r<round>_to<t>_from<f>_s<seq>_a<attempt>.batch"
/// in a spool directory; receive scans its round's files.  Tuples are
/// serialized with the compact binary codec (rdf/codec.hpp — varint header
/// plus a delta-encoded checksummed triple block), the same format
/// snapshots and checkpoints use, so the measured IO cost includes real
/// serialization, disk writes, reads, and decoding — the quantities behind
/// Fig. 2's IO component — and `CommStats` bytes are true bytes-on-wire.
///
/// Writes are torn-file safe: the envelope is written to a ".tmp" sibling
/// and atomically renamed into place, so a reader never observes a partial
/// batch under normal operation — and if a file *is* damaged on disk, the
/// block checksum and header validation turn the damage into a detected
/// checksum failure instead of a silently wrong closure.
class FileTransport final : public Transport {
 public:
  FileTransport(std::filesystem::path spool_dir,
                std::uint32_t num_partitions);
  ~FileTransport() override;

  void send_batch(Batch batch) override;
  std::vector<Batch> receive_batches(std::uint32_t to,
                                     std::uint32_t round) override;
  std::vector<Batch> receive_all(std::uint32_t to) override;
  [[nodiscard]] std::string name() const override { return "file"; }

  [[nodiscard]] std::filesystem::path batch_path(const Batch& batch) const;
  [[nodiscard]] const std::filesystem::path& spool_dir() const {
    return dir_;
  }

 private:
  std::filesystem::path dir_;
};

/// Seeded fault model for FaultyTransport.  Every decision derives from a
/// hash of (seed, batch id, attempt), so a schedule is replayable — the
/// same seed injects the same faults regardless of thread interleaving.
/// At most one destructive fault (drop / duplicate / corrupt / delay) is
/// drawn per transmission; reordering is drawn independently because it is
/// non-destructive under set semantics.
struct FaultSpec {
  std::uint64_t seed = 1;
  double drop = 0.0;       // P(envelope vanishes)
  double duplicate = 0.0;  // P(envelope delivered twice)
  double corrupt = 0.0;    // P(payload mutated; checksum left stale)
  double delay = 0.0;      // P(envelope held for 1..max_delay_rounds rounds)
  double reorder = 0.0;    // P(tuple/batch order shuffled)
  std::uint32_t max_delay_rounds = 2;
  /// Attempts at or beyond this count pass through clean, making every
  /// schedule finite: bounded retries always eventually succeed.
  std::uint32_t max_faulty_attempts = 3;
};

/// Deterministic fault-injection decorator over any Transport.  Wraps the
/// inner transport's envelopes on the send side; receiver-side it releases
/// delayed envelopes whose due round has come and optionally shuffles
/// delivery order.  Stats are the inner transport's counters merged with
/// the protocol counters recorded against the decorator.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, FaultSpec spec);

  void send_batch(Batch batch) override;
  std::vector<Batch> receive_batches(std::uint32_t to,
                                     std::uint32_t round) override;
  std::vector<Batch> receive_all(std::uint32_t to) override;
  [[nodiscard]] CommStats stats(std::uint32_t partition) const override;
  [[nodiscard]] FaultLog injected_faults() const override;
  [[nodiscard]] std::string name() const override {
    return "faulty+" + inner_.name();
  }

  /// Delayed envelopes still in limbo (test introspection).
  [[nodiscard]] std::size_t limbo_remaining() const;

 private:
  /// An envelope held back by a delay fault until `due_round` (round-
  /// synchronous receive) or until `holds` further receive_all polls have
  /// elapsed (asynchronous receive, where no shared round exists).
  struct Delayed {
    std::uint32_t due_round = 0;
    std::uint32_t holds = 0;
    Batch batch;
  };

  Transport& inner_;
  FaultSpec spec_;
  mutable std::mutex mutex_;
  FaultLog log_;
  std::vector<Delayed> limbo_;
  // Per-destination receive_all poll counters: seed both the limbo
  // countdown and the deterministic delivery shuffle in async mode.
  std::map<std::uint32_t, std::uint64_t> poll_counts_;
};

}  // namespace parowl::parallel
