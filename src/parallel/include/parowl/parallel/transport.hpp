#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::parallel {

/// Per-partition communication counters, separated by direction.  The
/// cluster uses `seconds` for the Fig. 2 "IO" component and `bytes` for the
/// simulated-network model.
struct CommStats {
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;

  void merge(const CommStats& other) {
    send_seconds += other.send_seconds;
    recv_seconds += other.recv_seconds;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    messages_sent += other.messages_sent;
  }
};

/// Inter-partition tuple exchange.  Usage is round-synchronous: every
/// worker `send`s all its round-r batches, the executor barriers, then
/// every worker `receive`s its round-r inbox.  Implementations must allow
/// concurrent calls from distinct workers.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ship `tuples` from partition `from` to partition `to` for round
  /// `round`.  Empty batches may be skipped by the caller.
  virtual void send(std::uint32_t from, std::uint32_t to, std::uint32_t round,
                    std::span<const rdf::Triple> tuples) = 0;

  /// Collect every tuple sent to `to` for `round`.  Called exactly once per
  /// (partition, round), after all sends of that round completed.
  virtual std::vector<rdf::Triple> receive(std::uint32_t to,
                                           std::uint32_t round) = 0;

  /// Communication counters for one partition (accumulated over rounds).
  [[nodiscard]] virtual CommStats stats(std::uint32_t partition) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Shared-memory transport: per-destination mailboxes under a mutex.  This
/// stands in for "a more efficient communication mechanism like MPI" that
/// §VI-B says would shrink the IO share — and is what the paper itself
/// switched to for the rule-partitioning experiments.
class MemoryTransport final : public Transport {
 public:
  explicit MemoryTransport(std::uint32_t num_partitions);

  void send(std::uint32_t from, std::uint32_t to, std::uint32_t round,
            std::span<const rdf::Triple> tuples) override;
  std::vector<rdf::Triple> receive(std::uint32_t to,
                                   std::uint32_t round) override;
  [[nodiscard]] CommStats stats(std::uint32_t partition) const override;
  [[nodiscard]] std::string name() const override { return "memory"; }

 private:
  mutable std::mutex mutex_;
  // (to, round) -> accumulated tuples.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<rdf::Triple>>
      mailboxes_;
  std::vector<CommStats> stats_;
};

/// Shared-filesystem transport, as in the paper's implementation (§V): each
/// batch becomes a file "round<r>_from<f>_to<t>" in a spool directory;
/// receive globs and parses its round's files.  Tuples are serialized as
/// N-Triples text via the shared dictionary, so the measured IO cost
/// includes real serialization, disk writes, reads, and parsing — the
/// quantities behind Fig. 2's IO component.
class FileTransport final : public Transport {
 public:
  /// `dict` must outlive the transport and already contain every term the
  /// workers can derive (receive only looks terms up, never interns, so it
  /// is safe under the threaded executor).
  FileTransport(std::filesystem::path spool_dir, const rdf::Dictionary& dict,
                std::uint32_t num_partitions);
  ~FileTransport() override;

  void send(std::uint32_t from, std::uint32_t to, std::uint32_t round,
            std::span<const rdf::Triple> tuples) override;
  std::vector<rdf::Triple> receive(std::uint32_t to,
                                   std::uint32_t round) override;
  [[nodiscard]] CommStats stats(std::uint32_t partition) const override;
  [[nodiscard]] std::string name() const override { return "file"; }

 private:
  [[nodiscard]] std::filesystem::path batch_path(std::uint32_t from,
                                                 std::uint32_t to,
                                                 std::uint32_t round) const;

  std::filesystem::path dir_;
  const rdf::Dictionary& dict_;
  mutable std::mutex mutex_;
  std::vector<CommStats> stats_;
};

}  // namespace parowl::parallel
