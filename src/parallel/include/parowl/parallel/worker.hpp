#pragma once

#include <memory>
#include <span>
#include <vector>

#include "parowl/parallel/router.hpp"
#include "parowl/parallel/transport.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::parallel {

/// Per-round timing/volume record for one worker — the raw data behind the
/// paper's Fig. 2 overhead breakdown.
struct RoundStats {
  double reason_seconds = 0.0;     // local closure computation
  double io_seconds = 0.0;         // transport send + receive
  double sync_seconds = 0.0;       // waiting for the slowest partition
  double aggregate_seconds = 0.0;  // merging received tuples into the store
  std::size_t derived = 0;         // new local derivations this round
  std::size_t sent_tuples = 0;
  std::size_t sent_messages = 0;
  std::size_t received_tuples = 0;
  std::size_t received_new = 0;    // received tuples that were actually new
};

/// Options shared by all workers of a cluster.
struct WorkerOptions {
  /// Local reasoning strategy per round.  kQueryDriven reproduces the
  /// paper's Jena materialization behaviour (super-linear cost in partition
  /// size); kForward is the efficient engine.
  reason::Strategy strategy = reason::Strategy::kForward;
  bool share_tables = false;  // query-driven table sharing
  const rdf::Dictionary* dict = nullptr;

  /// Threads for the forward engine's matching pass inside each worker's
  /// local closure (0 = hardware concurrency).  Closures are bit-identical
  /// for every value, so this composes transparently with any executor.
  unsigned reason_threads = 1;
};

/// A batch of tuples routed to one destination partition.
struct Outgoing {
  std::uint32_t dest = 0;
  std::vector<rdf::Triple> tuples;
};

/// One node of the parallel reasoner (Algorithm 3).  A worker owns its
/// triple store and rule subset; each round it (a) closes its store under
/// its rules, (b) routes and sends fresh derivations, and after the barrier
/// (c) merges received tuples.  Workers never share mutable state — all
/// exchange goes through the Transport (round mode) or the caller (the
/// asynchronous simulator owns delivery itself).
class Worker {
 public:
  Worker(std::uint32_t id, rules::RuleSet rule_base,
         std::shared_ptr<const Router> router, Transport* transport,
         WorkerOptions options);

  /// Load the base partition (and any replicated triples, e.g. schema).
  void load(std::span<const rdf::Triple> base);

  /// Close the store under this worker's rules starting from the current
  /// frontier and route the fresh derivations.  Returns the outgoing
  /// batches; `compute_seconds`, when non-null, receives the measured
  /// reasoning time.  Transport-independent (used by the async simulator).
  std::vector<Outgoing> compute_local(double* compute_seconds = nullptr);

  /// Merge a delta of foreign tuples into the store (no transport involved;
  /// used by the async simulator).  Returns the number of new tuples.
  std::size_t absorb(std::span<const rdf::Triple> tuples);

  /// Round phase A: local closure from the current frontier, then route and
  /// ship fresh derivations.  Returns the number of tuples sent.
  std::size_t compute_and_send(std::uint32_t round);

  /// Round phase B (after the barrier): drain the inbox for `round` and add
  /// tuples to the store.  Returns the number of genuinely new tuples.
  std::size_t receive_and_aggregate(std::uint32_t round);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const rdf::TripleStore& store() const { return store_; }
  [[nodiscard]] std::size_t base_size() const { return base_size_; }

  /// Triples beyond the initial load: this processor's "result" for the
  /// OR metric.
  [[nodiscard]] std::size_t result_size() const {
    return store_.size() - base_size_;
  }

  [[nodiscard]] const std::vector<RoundStats>& rounds() const {
    return rounds_;
  }
  /// Cluster fills in sync_seconds after each round.
  [[nodiscard]] std::vector<RoundStats>& mutable_rounds() { return rounds_; }

 private:
  std::uint32_t id_;
  rules::RuleSet rule_base_;
  std::shared_ptr<const Router> router_;
  Transport* transport_;  // null when driven by the async simulator
  WorkerOptions options_;

  rdf::TripleStore store_;
  std::size_t base_size_ = 0;
  std::size_t frontier_ = 0;    // store index where the next closure starts
  std::size_t route_mark_ = 0;  // store index of the first unrouted triple
  std::vector<RoundStats> rounds_;
};

}  // namespace parowl::parallel
