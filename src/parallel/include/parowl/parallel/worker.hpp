#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "parowl/parallel/router.hpp"
#include "parowl/parallel/transport.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/reason/forward.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::parallel {

/// Per-round timing/volume record for one worker — the raw data behind the
/// paper's Fig. 2 overhead breakdown, extended with the ack/retry
/// protocol's delivery accounting.
struct RoundStats {
  double reason_seconds = 0.0;     // local closure computation
  double io_seconds = 0.0;         // transport send + receive
  double sync_seconds = 0.0;       // waiting for the slowest partition
  double aggregate_seconds = 0.0;  // merging received tuples into the store
  std::size_t derived = 0;         // new local derivations this round
  std::size_t sent_tuples = 0;
  std::size_t sent_messages = 0;
  std::size_t received_tuples = 0; // everything that arrived (wire volume)
  std::size_t received_new = 0;    // received tuples that were actually new
  std::size_t retransmitted = 0;   // batches resent after a missing ack
  std::size_t redelivered = 0;     // duplicate batches discarded by id
  std::size_t corrupt_batches = 0; // checksum failures detected
};

/// Options shared by all workers of a cluster.
struct WorkerOptions {
  /// Local reasoning strategy per round.  kQueryDriven reproduces the
  /// paper's Jena materialization behaviour (super-linear cost in partition
  /// size); kForward is the efficient engine.
  reason::Strategy strategy = reason::Strategy::kForward;
  bool share_tables = false;  // query-driven table sharing
  const rdf::Dictionary* dict = nullptr;

  /// Threads for the forward engine's matching pass inside each worker's
  /// local closure (0 = hardware concurrency).  Closures are bit-identical
  /// for every value, so this composes transparently with any executor.
  unsigned reason_threads = 1;
};

/// A batch of tuples routed to one destination partition.
struct Outgoing {
  std::uint32_t dest = 0;
  std::vector<rdf::Triple> tuples;
};

/// One node of the parallel reasoner (Algorithm 3).  A worker owns its
/// triple store and rule subset; each round it (a) closes its store under
/// its rules, (b) routes and sends fresh derivations, and after the barrier
/// (c) merges received tuples.  Workers never share mutable state — all
/// exchange goes through the Transport (round mode) or the caller (the
/// asynchronous simulator owns delivery itself).
///
/// Delivery is exactly-once *effective*: envelopes carry a checksum and a
/// unique batch id; `collect` discards corrupt envelopes (forcing a
/// retransmission) and deduplicates redeliveries, and `aggregate_round`
/// merges the surviving payloads in a canonical order — so any fault
/// schedule the retry machinery survives yields a store log bit-identical
/// to the fault-free run's.
class Worker {
 public:
  Worker(std::uint32_t id, rules::RuleSet rule_base,
         std::shared_ptr<const Router> router, Transport* transport,
         WorkerOptions options);

  /// Load the base partition (and any replicated triples, e.g. schema).
  void load(std::span<const rdf::Triple> base);

  /// Close the store under this worker's rules starting from the current
  /// frontier and route the fresh derivations.  Returns the outgoing
  /// batches (sorted by destination); `compute_seconds`, when non-null,
  /// receives the measured reasoning time.  Transport-independent (used by
  /// the async simulator).
  std::vector<Outgoing> compute_local(double* compute_seconds = nullptr);

  /// Merge a delta of foreign tuples into the store (no transport involved;
  /// used by the async simulator).  Returns the number of new tuples.
  std::size_t absorb(std::span<const rdf::Triple> tuples);

  /// Round phase A: local closure from the current frontier, then route and
  /// ship fresh derivations as checksummed envelopes (kept for
  /// retransmission until acknowledged).  Returns the number of tuples
  /// sent.
  std::size_t compute_and_send(std::uint32_t round);

  /// Delivery loop step 1 (repeatable): drain the transport inbox for
  /// `round`, discard corrupt envelopes (counting a checksum failure),
  /// deduplicate redeliveries by batch id, acknowledge and stage the rest.
  /// Returns the number of envelopes newly staged.
  std::size_t collect(std::uint32_t round, AckBoard* board);

  /// Delivery loop step 2: resend every pending envelope the board has not
  /// acknowledged, with a bumped attempt counter; acknowledged envelopes
  /// are released.  Returns the number of retransmissions issued.
  std::size_t retransmit_unacked(std::uint32_t round, const AckBoard& board);

  /// Delivery loop finale: merge the staged payloads into the store in a
  /// canonical order — batches by (sender, seq), tuples sorted within each
  /// batch — so the store log is independent of arrival order.  Returns
  /// the number of genuinely new tuples.
  std::size_t aggregate_round(std::uint32_t round);

  /// Single-shot receive for callers outside the retry loop: collect
  /// (without acking) and aggregate.  Returns the number of new tuples.
  std::size_t receive_and_aggregate(std::uint32_t round);

  /// Envelopes sent this round and not yet acknowledged.
  [[nodiscard]] std::size_t pending_batches() const {
    return pending_.size();
  }

  // -- Asynchronous execution ------------------------------------------
  //
  // The async executors (ExecutionMode::kAsync / kAsyncThreaded) drop the
  // round barrier: workers drain arrivals with `async_collect`, evaluate
  // bounded frontier chunks with `async_step`, steal frontier shards from
  // backlogged peers (`grant_steal` on the victim, `evaluate_shard` +
  // `ship_steal_results` on the thief), and detect global quiescence with
  // a Dijkstra-style token ring (`send_token`).  All exchange still flows
  // through the ack'd Transport envelopes, so the fault model and retry
  // machinery of the synchronous mode apply unchanged.

  /// One envelope this worker has shipped and not yet seen acknowledged.
  struct SentRecord {
    std::uint64_t id = 0;
    std::size_t tuples = 0;
  };

  /// What one `async_collect` poll produced.
  struct AsyncArrivals {
    std::size_t batches = 0;       // data/steal envelopes newly staged
    std::size_t fresh = 0;         // genuinely new tuples absorbed
    std::size_t steal_tuples = 0;  // tuples arriving via kStealResult
    std::vector<Batch> tokens;     // termination probes (handled by caller)
  };

  /// Drain the transport inbox (any round), validate/dedup/ack exactly as
  /// `collect` does, absorb data and steal-result payloads in canonical
  /// order, and hand termination tokens back to the executor.
  AsyncArrivals async_collect(AckBoard* board);

  /// What one `async_step` call did.
  struct AsyncStepStats {
    std::size_t consumed = 0;      // frontier tuples evaluated
    std::size_t derived = 0;       // new local derivations
    std::size_t sent_tuples = 0;
    std::size_t sent_batches = 0;
    double compute_seconds = 0.0;
  };

  /// Evaluate up to `max_delta` frontier tuples (one bounded matching
  /// pass — not a fixpoint), insert the new derivations, and ship the
  /// routed ones.  Appends a SentRecord per envelope when `sent` is
  /// non-null.  Query-driven workers ignore `max_delta` and close fully.
  AsyncStepStats async_step(std::size_t max_delta,
                            std::vector<SentRecord>* sent);

  /// Frontier tuples not yet evaluated — the steal-target metric.
  [[nodiscard]] std::size_t backlog() const {
    return store_.size() - frontier_;
  }

  /// A contiguous frontier shard handed to a thief.
  struct StealShard {
    std::size_t lo = 0;
    std::size_t hi = 0;
  };

  /// Victim side of a steal: advance the frontier over up to `max_tuples`
  /// pending tuples and return the surrendered range (empty when no
  /// backlog).  The thief now owns evaluating [lo, hi).
  StealShard grant_steal(std::size_t max_tuples);

  /// Thief side of a steal: evaluate the victim's frontier range [lo, hi)
  /// against the victim's store WITHOUT mutating it (single matching
  /// pass).  Safe to call concurrently with nothing else touching the
  /// victim; the threaded executor serializes via the victim's lock.
  [[nodiscard]] std::vector<reason::ForwardEngine::Derivation> evaluate_shard(
      std::size_t lo, std::size_t hi) const;

  /// Ship a steal's derivations: everything goes back to the victim as one
  /// kStealResult envelope (the victim absorbs them as foreign deltas and
  /// re-evaluates), plus ordinary kData envelopes to every destination the
  /// router names for the *victim's* partition.  Returns tuples shipped.
  std::size_t ship_steal_results(
      std::uint32_t victim_id,
      std::span<const reason::ForwardEngine::Derivation> derivations,
      std::vector<SentRecord>* sent);

  /// Ship a termination probe to worker `to`.
  void send_token(std::uint32_t to, std::uint32_t epoch, bool black,
                  std::vector<SentRecord>* sent);

  /// Async retransmission: resend every pending envelope the board has not
  /// acknowledged (no round argument — ids are monotonic).  Returns the
  /// number of retransmissions issued.
  std::size_t retransmit_unacked_async(const AckBoard& board);

  /// Release acknowledged envelopes from the pending set and mark their
  /// outbox entries with the current checkpoint count (for pruning).
  /// Returns the number still unacknowledged.
  std::size_t release_acked(const AckBoard& board);

  /// Begin logging every shipped envelope to the outbox (async runs with
  /// checkpointing enabled); no-op otherwise.
  void enable_outbox() { log_outbox_ = true; }

  /// Resend every envelope still in the outbox log (crash recovery:
  /// receivers deduplicate by batch id, so over-sending is harmless).
  std::size_t resend_outbox(std::vector<SentRecord>* sent);

  /// Drop outbox entries acknowledged before the *previous* checkpoint —
  /// any receiver cut that old has already durably absorbed them.
  void prune_outbox();

  [[nodiscard]] reason::Strategy strategy() const {
    return options_.strategy;
  }
  /// Only forward-strategy workers can serve as steal victims: the stolen
  /// shard is evaluated by ForwardEngine::match_delta against their store.
  [[nodiscard]] bool can_steal_from() const {
    return options_.strategy == reason::Strategy::kForward;
  }

  // -- Checkpointing --------------------------------------------------

  /// Serialize the worker's complete reasoning state (store log, frontier
  /// marks, per-round stats, per-rule firings, delivery dedup set) as of
  /// the end of `round`.  The stream is binary and versioned; a trailing
  /// digest detects torn or damaged checkpoints on load.
  void save_checkpoint(std::ostream& out, std::uint32_t round) const;

  /// Restore state from a checkpoint, replacing everything.  On success
  /// sets `*round` to the round the checkpoint was taken at and returns
  /// true; on failure returns false with `*error` describing why (the
  /// worker is left cleared).
  bool load_checkpoint(std::istream& in, std::uint32_t* round,
                       std::string* error = nullptr);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const rdf::TripleStore& store() const { return store_; }
  [[nodiscard]] std::size_t base_size() const { return base_size_; }

  /// Triples beyond the initial load: this processor's "result" for the
  /// OR metric.
  [[nodiscard]] std::size_t result_size() const {
    return store_.size() - base_size_;
  }

  /// Unique derivations credited per rule, accumulated across rounds
  /// (forward strategy only; empty under query-driven workers).
  [[nodiscard]] const std::vector<std::size_t>& rule_firings() const {
    return rule_firings_;
  }

  [[nodiscard]] const std::vector<RoundStats>& rounds() const {
    return rounds_;
  }
  /// Cluster fills in sync_seconds after each round.
  [[nodiscard]] std::vector<RoundStats>& mutable_rounds() { return rounds_; }

 private:
  [[nodiscard]] RoundStats& round_stats(std::uint32_t round);

  std::uint32_t id_;
  rules::RuleSet rule_base_;
  std::shared_ptr<const Router> router_;
  Transport* transport_;  // null when driven by the async simulator
  WorkerOptions options_;

  rdf::TripleStore store_;
  std::size_t base_size_ = 0;
  std::size_t frontier_ = 0;    // store index where the next closure starts
  std::size_t route_mark_ = 0;  // store index of the first unrouted triple
  std::vector<RoundStats> rounds_;
  std::vector<std::size_t> rule_firings_;

  std::vector<Batch> pending_;  // sent this round, awaiting acknowledgement
  std::vector<Batch> stash_;    // validated arrivals awaiting aggregation
  std::unordered_set<std::uint64_t> seen_batches_;  // redelivery dedup

  // -- Async state ----------------------------------------------------
  /// Monotonic per-sender sequence, packed into the batch-id round field
  /// (no shared round exists).  Bumped by a large gap on checkpoint load
  /// so post-recovery ids can never collide with pre-crash ones.
  std::uint32_t send_seq_ = 0;
  /// Outbox log for async checkpointing: every shipped data/steal
  /// envelope, retained until a checkpoint older than its ack proves every
  /// receiver cut has absorbed it.  `acked_ck` is the checkpoint count at
  /// which the ack was observed (-1 = not yet acked).
  struct OutboxEntry {
    Batch batch;
    std::int64_t acked_ck = -1;
  };
  std::vector<OutboxEntry> outbox_;
  std::int64_t ckpt_count_ = 0;  // checkpoints taken this run
  bool log_outbox_ = false;

  /// Stamp identity/sequence/checksum on an async envelope, record it in
  /// pending_ (+ outbox when logging), ship it.
  void ship_async(Batch batch, std::vector<SentRecord>* sent);
};

}  // namespace parowl::parallel
