#pragma once

#include <memory>
#include <vector>

#include "parowl/parallel/cluster.hpp"
#include "parowl/parallel/worker.hpp"

namespace parowl::parallel {

/// Per-worker outcome of an asynchronous run.
struct AsyncWorkerStats {
  double busy_seconds = 0.0;      // reasoning + aggregation (virtual)
  double finish_time = 0.0;       // virtual clock at last activation end
  std::size_t activations = 0;    // delta batches processed
  std::size_t sent_tuples = 0;
  std::size_t received_tuples = 0;
};

/// Outcome of an asynchronous run.
struct AsyncResult {
  /// Virtual makespan: the largest worker finish time, with communication
  /// delays from the network model applied to every batch in flight.
  double simulated_seconds = 0.0;

  /// Total idle (waiting-for-input) time across workers — the quantity the
  /// paper's synchronization bars measure, which asynchrony shrinks.
  double wait_seconds = 0.0;

  std::vector<AsyncWorkerStats> workers;
  std::size_t deliveries = 0;  // batches delivered

  std::vector<std::size_t> results_per_partition;
  std::size_t union_results = 0;

  /// Fault accounting when a FaultSpec was attached (all zero otherwise):
  /// what was injected, how many retransmissions the model charged, and the
  /// extra virtual time those cost.
  FaultLog injected;
  std::uint64_t retries = 0;
  double retry_seconds = 0.0;
};

/// Asynchronous executor for Algorithm 3, implementing the improvement the
/// paper proposes in §VI-B: "by making a partition not wait till all other
/// partitions finish, but rather start immediately using all the currently
/// received tuples".
///
/// Because a single-core host cannot exhibit real overlap, the executor is
/// a discrete-event simulation over virtual time: each worker carries a
/// virtual clock; processing a delta advances it by the *measured* compute
/// time of that delta, and each routed batch arrives at its destination
/// after the network model's delay.  A worker activates as soon as input is
/// available and its clock allows — no barriers.  The fixpoint reached is
/// identical to the round-synchronous executor's (same monotone closure).
/// Fault handling is folded into the event queue itself: a dropped or
/// corrupt batch is re-enqueued with its attempt counter bumped and a
/// timeout-plus-retransmission delay added to its arrival (corruption is
/// detected on arrival by the checksum, so it costs a full extra round
/// trip); duplicates enqueue a second copy (absorption is idempotent) and
/// delays stretch the arrival.  Decisions hash (seed, batch id, attempt)
/// exactly like FaultyTransport, so schedules are replayable, and
/// `FaultSpec::max_faulty_attempts` bounds every retry chain.  The fixpoint
/// is unaffected — only the virtual clock and the fault counters move.
class AsyncSimulator {
 public:
  /// `faults`, when non-null, must outlive the simulator.
  AsyncSimulator(std::uint32_t num_partitions, NetworkModel network,
                 const FaultSpec* faults = nullptr);

  /// Add a worker (same construction as Cluster::add_worker; the worker
  /// never touches a transport here).
  std::uint32_t add_worker(rules::RuleSet rule_base,
                           std::shared_ptr<const Router> router,
                           WorkerOptions worker_options);

  void load(std::uint32_t id, std::span<const rdf::Triple> base);

  /// Run to quiescence (event queue empty) and report virtual-time stats.
  AsyncResult run();

  [[nodiscard]] const Worker& worker(std::uint32_t id) const {
    return *workers_[id];
  }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

 private:
  NetworkModel network_;
  const FaultSpec* faults_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace parowl::parallel
