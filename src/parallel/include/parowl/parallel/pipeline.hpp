#pragma once

#include <optional>

#include "parowl/parallel/async_sim.hpp"
#include "parowl/parallel/cluster.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/partition/metrics.hpp"
#include "parowl/partition/rule_partition.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::parallel {

/// Which partitioning approach to use.
enum class Approach {
  kDataPartition,  // §III-A: split the data, replicate the rule-base
  kRulePartition,  // §III-B: split the rule-base, replicate the data
  /// Hybrid partitioning ([18]; the paper lists it as future work in
  /// §VII): both the data AND the rule-base are split.  Worker (d, j)
  /// holds data partition d and rule partition j; total workers =
  /// partitions x rule_partitions.
  kHybrid,
};

/// End-to-end options for a parallel materialization run.
struct ParallelOptions {
  /// Data partitions (data/hybrid) or rule partitions (rule approach).
  std::uint32_t partitions = 4;

  /// Rule partitions for the hybrid approach (total workers =
  /// partitions x rule_partitions); ignored otherwise.
  std::uint32_t rule_partitions = 2;

  Approach approach = Approach::kDataPartition;

  /// Owner policy for the data-partitioning approach (required there;
  /// ignored for rule partitioning).
  const partition::OwnerPolicy* policy = nullptr;

  /// Per-worker local reasoning strategy.
  reason::Strategy local_strategy = reason::Strategy::kForward;

  /// Weigh the rule-dependency graph with predicate statistics from the
  /// input store (rule/hybrid partitioning only).
  bool weighted_rule_graph = true;

  /// Optional statistics source overriding the input store for the rule
  /// graph weights — e.g. a previously materialized KB, the "stationary
  /// data-set" assumption of statistics-based partitioning ([16] in the
  /// paper).  Only consulted when weighted_rule_graph is true.
  const rdf::TripleStore* rule_statistics = nullptr;

  ExecutionMode mode = ExecutionMode::kSequentialSimulated;
  NetworkModel network;
  rules::HorstOptions horst;

  /// Asynchronous-executor knobs (kAsync / kAsyncThreaded), forwarded to
  /// ClusterOptions.
  AsyncOptions async_exec;

  /// External transport (e.g. a FileTransport on a spool directory).  When
  /// null, an in-memory transport is created internally.
  Transport* transport = nullptr;

  /// Fault injection: when non-null (must outlive the call), the transport
  /// is wrapped in a deterministic FaultyTransport driven by this spec —
  /// or, under kAsyncSimulated, the spec drives the event-queue fault
  /// hooks.  The closure is provably unaffected; only the overhead
  /// accounting changes.
  const FaultSpec* faults = nullptr;

  /// Round-granular checkpointing directory ("" = disabled) and the
  /// ack/retry + crash-injection knobs, forwarded to ClusterOptions.
  CheckpointOptions checkpoint;
  FaultToleranceOptions fault_tolerance;

  /// Build the merged output store (base + schema + every derivation).
  /// Disable for large benchmark sweeps where only counts matter.
  bool build_merged = true;

  /// Observability sinks/sampling, forwarded to ClusterOptions.
  obs::ObsOptions obs;
};

/// Outcome of a parallel run.
struct ParallelResult {
  /// Round-based executor results.  Under kAsyncSimulated only the shared
  /// fields (simulated_seconds, results_per_partition, union_results) are
  /// filled here; the full async stats are in `async`.
  ClusterResult cluster;

  /// Present iff options.mode == ExecutionMode::kAsyncSimulated.
  std::optional<AsyncResult> async;

  /// Data-partitioning quality metrics (bal, IR); empty for rule runs.
  std::optional<partition::PartitionMetrics> metrics;

  /// OR: output-duplication excess across processors.
  double output_replication = 0.0;

  /// Wall time of the partitioning step itself.
  double partition_seconds = 0.0;

  /// Master-side aggregation: unioning worker results into the final KB
  /// (the "aggregation" component of the paper's Fig. 2).
  double merge_seconds = 0.0;

  /// Number of instance rules each worker ran (total across partitions for
  /// rule partitioning).
  std::size_t compiled_rules = 0;

  /// Union of everything: input triples, schema ground facts, and every
  /// worker derivation.  Present iff options.build_merged.
  std::optional<rdf::TripleStore> merged;

  /// Total distinct derivations across the cluster.
  std::size_t inferred = 0;
};

/// Materialize `store`'s OWL-Horst closure with the parallel reasoner:
/// compile the ontology once, partition data or rules, run Algorithm 3,
/// and merge.  The input store is not modified.
[[nodiscard]] ParallelResult parallel_materialize(
    const rdf::TripleStore& store, const rdf::Dictionary& dict,
    const ontology::Vocabulary& vocab, const ParallelOptions& options);

}  // namespace parowl::parallel
