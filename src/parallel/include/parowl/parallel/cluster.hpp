#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "parowl/obs/options.hpp"
#include "parowl/obs/report.hpp"
#include "parowl/parallel/worker.hpp"

namespace parowl::parallel {

/// How worker rounds are executed.
enum class ExecutionMode {
  /// Workers run one at a time inside each round; per-worker compute time
  /// is measured cleanly (single-threaded) and the parallel makespan is
  /// *simulated* as sum over rounds of the slowest worker plus
  /// communication.  This is the mode the benchmark harnesses use: on a
  /// single-core host it is the honest stand-in for the paper's 16-node
  /// cluster, because the paper's reported quantities (speedup, per-round
  /// overhead shares) are functions of per-partition work and traffic, not
  /// of physical concurrency.
  kSequentialSimulated,

  /// One thread per worker with std::barrier round synchronization; real
  /// concurrency (used by the correctness tests and on multi-core hosts).
  kThreaded,

  /// Asynchronous discrete-event simulation (no barriers): the §VI-B
  /// improvement the paper proposes.  Handled by AsyncSimulator; the
  /// round-based Cluster rejects this mode.
  kAsyncSimulated,

  /// Asynchronous execution over the real Transport/ack machinery, driven
  /// deterministically on one thread with per-worker virtual clocks:
  /// workers drain arrivals as they come, evaluate bounded frontier
  /// chunks, steal frontier shards from the most-backlogged peer when
  /// idle, and terminate via a Dijkstra-style token ring — no round
  /// barrier.  The closure SET is bit-identical to the synchronous modes
  /// (monotone closure: the fixpoint is interleaving-independent).
  kAsync,

  /// Same protocol with one real thread per worker (mutex-guarded worker
  /// state, lock-free backlog hints) — the mode TSan exercises, since
  /// stealing introduces genuine cross-worker sharing.
  kAsyncThreaded,
};

/// Communication-cost model used to convert measured traffic into the
/// simulated makespan.
struct NetworkModel {
  /// When true (automatic for FileTransport), use measured transport
  /// seconds as the per-round communication cost.
  bool use_measured_io = false;

  double latency_seconds = 100e-6;          // per message
  double bandwidth_bytes_per_sec = 125e6;   // ~1 Gbit/s
  double bytes_per_tuple = 64.0;            // serialized triple estimate
};

/// Round-granular checkpointing.  A checkpoint is taken at a round
/// boundary — after full acknowledged delivery and aggregation — which is a
/// consistent cut: nothing is in flight, so the per-worker files of one
/// round together capture the whole cluster state.
struct CheckpointOptions {
  std::string dir;             // empty = checkpointing disabled
  std::uint32_t interval = 1;  // checkpoint every N rounds
  /// Keep the last N checkpointed rounds per worker (0 = keep all).
  std::uint32_t retain = 0;
};

/// Ack/retry delivery and crash-injection knobs.
struct FaultToleranceOptions {
  /// Delivery sub-iterations per round before giving up.  With the default
  /// FaultSpec (max_faulty_attempts = 3) every schedule completes well
  /// within this bound.
  std::uint32_t max_retries = 10;

  /// Virtual exponential backoff charged per retry sub-iteration (no real
  /// sleeping — the cost is added to the simulated makespan and reported).
  double backoff_base_seconds = 100e-6;
  double backoff_multiplier = 2.0;

  /// Crash injection for recovery tests (sequential mode only): when
  /// `crash_at_round` >= 0, worker `crash_worker` dies — throws
  /// SimulatedCrash — as the round reaches its compute phase.  `run()`
  /// then restores the whole cluster from the last complete checkpoint set
  /// (the single-process equivalent of restarting the killed node: at a
  /// round boundary the survivors' checkpoints equal their live state) and
  /// resumes.
  std::int64_t crash_at_round = -1;
  std::uint32_t crash_worker = 0;
};

/// Knobs of the asynchronous executors (kAsync / kAsyncThreaded).
struct AsyncOptions {
  /// Steal frontier shards from the most-backlogged peer when idle.
  bool steal = true;
  /// Max frontier tuples surrendered per steal grant.
  std::size_t steal_batch = 256;
  /// Max frontier tuples one async_step evaluates (the activation grain —
  /// smaller chunks interleave communication more aggressively).
  std::size_t chunk = 256;
  /// Idle polls without progress before unacked envelopes are resent.
  std::uint32_t retransmit_after = 3;
  /// Checkpoint every N termination-token epochs (0 = every epoch).
  std::uint32_t checkpoint_epochs = 1;
};

/// What the asynchronous executors did, beyond the round-mode accounting.
struct AsyncStats {
  std::uint64_t activations = 0;     // bounded evaluation steps executed
  std::uint64_t steals = 0;          // successful steal grants
  std::uint64_t stolen_tuples = 0;   // frontier tuples stolen
  std::uint64_t steal_derivations = 0;  // tuples shipped back by thieves
  std::uint64_t token_epochs = 0;    // termination probes launched
  std::uint64_t token_passes = 0;    // token hops observed
  double idle_seconds = 0.0;         // summed per-worker idle time
  std::vector<double> idle_seconds_per_worker;
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const AsyncStats& s);

struct ClusterOptions {
  ExecutionMode mode = ExecutionMode::kSequentialSimulated;
  NetworkModel network;
  std::size_t max_rounds = 10000;
  CheckpointOptions checkpoint;
  FaultToleranceOptions fault_tolerance;
  AsyncOptions async;

  /// Observability sinks/sampling (docs/architecture.md "Observability").
  obs::ObsOptions obs;
};

/// Thrown by the injected crash (caught internally by `run()` when
/// recovery is possible) and by recovery itself when no usable checkpoint
/// exists.
class SimulatedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a round cannot be fully delivered within
/// FaultToleranceOptions::max_retries sub-iterations.
class DeliveryFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-round maxima across workers (the series Fig. 2 plots).
struct RoundBreakdown {
  double reason_max = 0.0;
  double io_max = 0.0;
  double sync_max = 0.0;
  double aggregate_max = 0.0;
  std::size_t tuples_exchanged = 0;
};

/// Fault-tolerance accounting for one run: what was injected, what the
/// protocol did about it, and whether recovery happened.
struct RunReport {
  std::uint64_t batches_sent = 0;       // first transmissions
  std::uint64_t retransmissions = 0;    // batches resent after missing acks
  std::uint64_t redeliveries = 0;       // duplicates discarded by batch id
  std::uint64_t checksum_failures = 0;  // corrupt envelopes detected
  std::uint64_t checkpoints_written = 0;
  double backoff_seconds = 0.0;         // virtual retry backoff charged
  bool recovered = false;               // a crash was recovered from
  std::int64_t recovered_from_round = -1;
  FaultLog injected;                    // from the FaultyTransport, if any
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const RunReport& r);

/// Outcome of a cluster run.
struct ClusterResult {
  std::size_t rounds = 0;
  double wall_seconds = 0.0;       // actual harness wall time
  double simulated_seconds = 0.0;  // modeled parallel makespan
  std::vector<RoundBreakdown> breakdown;

  /// Result tuples (beyond initial load) per partition, and the size of
  /// their union — the inputs to the OR metric.
  std::vector<std::size_t> results_per_partition;
  std::size_t union_results = 0;

  /// Sum across rounds of each component's per-round maximum.
  double reason_seconds = 0.0;
  double io_seconds = 0.0;
  double sync_seconds = 0.0;
  double aggregate_seconds = 0.0;

  /// Total reasoning time per worker (all rounds) — the measured-cost
  /// input to predictive rebalancing (partition/rebalance.hpp).
  std::vector<double> reason_seconds_per_worker;

  RunReport report;

  /// Filled by the asynchronous executors (zeroed elsewhere).
  AsyncStats async_stats;
};

/// The parallel reasoner of Algorithm 3: a set of workers, a transport, and
/// the round-synchronous driver with quiescence termination (a round in
/// which no worker ships any tuple ends the run — nothing is in transit).
///
/// Delivery within each round is an ack/retry loop: workers collect and
/// acknowledge validated envelopes, senders retransmit whatever the shared
/// AckBoard is still missing, bounded by max_retries with (virtual)
/// exponential backoff.  Because receivers deduplicate by batch id and
/// aggregate in canonical order, the closure — store logs, per-rule
/// firings, round stats — is bit-identical whether or not faults occurred.
class Cluster {
 public:
  Cluster(Transport& transport, ClusterOptions options);

  /// Add a worker; returns its id (= insertion order).
  std::uint32_t add_worker(rules::RuleSet rule_base,
                           std::shared_ptr<const Router> router,
                           WorkerOptions worker_options);

  /// Load partition data into worker `id`.
  void load(std::uint32_t id, std::span<const rdf::Triple> base);

  /// Run to global quiescence; computes stats and the simulated makespan.
  /// Recovers internally from an injected crash when checkpoints allow.
  ClusterResult run();

  /// Restore every worker from the newest round whose complete per-worker
  /// checkpoint set loads cleanly (torn or damaged files disqualify their
  /// round); a subsequent `run()` resumes at the following round.  Returns
  /// the restored round; throws SimulatedCrash when no usable round
  /// exists.  Requires checkpoint.dir to be set and workers added.
  std::int64_t restore_from_checkpoints();

  [[nodiscard]] const Worker& worker(std::uint32_t id) const {
    return *workers_[id];
  }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

 private:
  ClusterResult run_sequential();
  ClusterResult run_threaded();
  ClusterResult run_async();
  ClusterResult run_async_threaded();
  /// Bounded ack/retry delivery of one round, sequential flavour.
  void deliver_round_sequential(std::uint32_t round);
  void checkpoint_worker(Worker& worker, std::uint32_t round);
  [[nodiscard]] bool checkpoint_due(std::uint32_t round) const;
  void finalize(ClusterResult& result);
  void finalize_async(ClusterResult& result, const AsyncStats& stats);

  Transport& transport_;
  ClusterOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  AckBoard ack_board_;

  std::uint32_t start_round_ = 0;   // set by restore_from_checkpoints
  bool crash_armed_ = false;
  bool recovered_ = false;
  std::int64_t recovered_from_round_ = -1;
  std::uint64_t checkpoints_written_ = 0;
  double backoff_seconds_ = 0.0;
};

}  // namespace parowl::parallel
