#pragma once

#include <memory>
#include <vector>

#include "parowl/parallel/worker.hpp"

namespace parowl::parallel {

/// How worker rounds are executed.
enum class ExecutionMode {
  /// Workers run one at a time inside each round; per-worker compute time
  /// is measured cleanly (single-threaded) and the parallel makespan is
  /// *simulated* as sum over rounds of the slowest worker plus
  /// communication.  This is the mode the benchmark harnesses use: on a
  /// single-core host it is the honest stand-in for the paper's 16-node
  /// cluster, because the paper's reported quantities (speedup, per-round
  /// overhead shares) are functions of per-partition work and traffic, not
  /// of physical concurrency.
  kSequentialSimulated,

  /// One thread per worker with std::barrier round synchronization; real
  /// concurrency (used by the correctness tests and on multi-core hosts).
  kThreaded,

  /// Asynchronous discrete-event simulation (no barriers): the §VI-B
  /// improvement the paper proposes.  Handled by AsyncSimulator; the
  /// round-based Cluster rejects this mode.
  kAsyncSimulated,
};

/// Communication-cost model used to convert measured traffic into the
/// simulated makespan.
struct NetworkModel {
  /// When true (automatic for FileTransport), use measured transport
  /// seconds as the per-round communication cost.
  bool use_measured_io = false;

  double latency_seconds = 100e-6;          // per message
  double bandwidth_bytes_per_sec = 125e6;   // ~1 Gbit/s
  double bytes_per_tuple = 64.0;            // serialized triple estimate
};

struct ClusterOptions {
  ExecutionMode mode = ExecutionMode::kSequentialSimulated;
  NetworkModel network;
  std::size_t max_rounds = 10000;
};

/// Per-round maxima across workers (the series Fig. 2 plots).
struct RoundBreakdown {
  double reason_max = 0.0;
  double io_max = 0.0;
  double sync_max = 0.0;
  double aggregate_max = 0.0;
  std::size_t tuples_exchanged = 0;
};

/// Outcome of a cluster run.
struct ClusterResult {
  std::size_t rounds = 0;
  double wall_seconds = 0.0;       // actual harness wall time
  double simulated_seconds = 0.0;  // modeled parallel makespan
  std::vector<RoundBreakdown> breakdown;

  /// Result tuples (beyond initial load) per partition, and the size of
  /// their union — the inputs to the OR metric.
  std::vector<std::size_t> results_per_partition;
  std::size_t union_results = 0;

  /// Sum across rounds of each component's per-round maximum.
  double reason_seconds = 0.0;
  double io_seconds = 0.0;
  double sync_seconds = 0.0;
  double aggregate_seconds = 0.0;

  /// Total reasoning time per worker (all rounds) — the measured-cost
  /// input to predictive rebalancing (partition/rebalance.hpp).
  std::vector<double> reason_seconds_per_worker;
};

/// The parallel reasoner of Algorithm 3: a set of workers, a transport, and
/// the round-synchronous driver with quiescence termination (a round in
/// which no worker ships any tuple ends the run — nothing is in transit).
class Cluster {
 public:
  Cluster(Transport& transport, ClusterOptions options);

  /// Add a worker; returns its id (= insertion order).
  std::uint32_t add_worker(rules::RuleSet rule_base,
                           std::shared_ptr<const Router> router,
                           WorkerOptions worker_options);

  /// Load partition data into worker `id`.
  void load(std::uint32_t id, std::span<const rdf::Triple> base);

  /// Run to global quiescence; computes stats and the simulated makespan.
  ClusterResult run();

  [[nodiscard]] const Worker& worker(std::uint32_t id) const {
    return *workers_[id];
  }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

 private:
  ClusterResult run_sequential();
  ClusterResult run_threaded();
  void finalize(ClusterResult& result);

  Transport& transport_;
  ClusterOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace parowl::parallel
