#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "parowl/partition/owner_policy.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::parallel {

/// Decides which partitions a freshly derived tuple must be shipped to
/// (Algorithm 3 step 4).  Implementations are shared read-only between all
/// workers and must be thread-safe after construction.
///
/// Naming note — this is the *derivation* router of the materialization
/// plane (write path, runs while the closure is being computed).  Its
/// serving-plane counterpart is dist::QueryRouter, which routes *scan
/// requests* from the query front end to shard replicas at serve time.
/// See docs/architecture.md "Distributed serving" for the side-by-side.
class Router {
 public:
  virtual ~Router() = default;

  /// Append the destinations for `t` (excluding `self`) to `out`; `out` is
  /// not cleared.  Destinations must be distinct.
  virtual void route(const rdf::Triple& t, std::uint32_t self,
                     std::vector<std::uint32_t>& out) const = 0;
};

/// Data-partitioning router: a tuple goes to the owner of its subject and
/// the owner of its object (when owned).  Nodes absent from the owner table
/// (terms that only occur in the schema, literals) contribute no
/// destination.
class OwnerRouter final : public Router {
 public:
  explicit OwnerRouter(partition::OwnerTable owners)
      : owners_(std::move(owners)) {}

  void route(const rdf::Triple& t, std::uint32_t self,
             std::vector<std::uint32_t>& out) const override;

  [[nodiscard]] const partition::OwnerTable& owners() const {
    return owners_;
  }

 private:
  partition::OwnerTable owners_;
};

/// Rule-partitioning router: a tuple goes to every partition holding a rule
/// with a body atom the tuple can trigger (§IV: "we match the newly
/// generated [tuple] with all the rules of other partitions").
class RuleMatchRouter final : public Router {
 public:
  /// `partition_rules[p]` is the rule subset of partition p.
  explicit RuleMatchRouter(
      const std::vector<rules::RuleSet>& partition_rules);

  void route(const rdf::Triple& t, std::uint32_t self,
             std::vector<std::uint32_t>& out) const override;

 private:
  /// Body atoms per partition, flattened for the match loop.
  std::vector<std::vector<rules::Atom>> body_atoms_;
};

/// Hybrid router: workers form a (data x rule) grid; worker id =
/// d * rule_parts + j holds data partition d and rule partition j.  A tuple
/// travels to every grid cell whose data partition owns one of its
/// endpoints and whose rule partition it can trigger.
class HybridRouter final : public Router {
 public:
  HybridRouter(partition::OwnerTable owners,
               const std::vector<rules::RuleSet>& rule_parts);

  void route(const rdf::Triple& t, std::uint32_t self,
             std::vector<std::uint32_t>& out) const override;

  [[nodiscard]] std::uint32_t rule_parts() const {
    return static_cast<std::uint32_t>(body_atoms_.size());
  }

 private:
  partition::OwnerTable owners_;
  std::vector<std::vector<rules::Atom>> body_atoms_;
};

/// True iff `t` can instantiate `atom` (constants agree; variables match
/// anything; repeated variables must bind consistently).
[[nodiscard]] bool atom_matches_tuple(const rules::Atom& atom,
                                      const rdf::Triple& t);

}  // namespace parowl::parallel
