#include "parowl/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

namespace parowl::obs {
namespace {

void json_escape_to(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

void put_arg(std::ostream& os, const TraceArg& a) {
  os << '"';
  json_escape_to(os, a.key);
  os << "\":";
  switch (a.kind) {
    case TraceArg::Kind::kInt:
      os << a.int_value;
      break;
    case TraceArg::Kind::kDouble: {
      if (!std::isfinite(a.double_value)) {
        os << 0;
      } else {
        const auto precision = os.precision();
        os.precision(15);
        os << a.double_value;
        os.precision(precision);
      }
      break;
    }
    case TraceArg::Kind::kString:
      os << '"';
      json_escape_to(os, a.string_value);
      os << '"';
      break;
  }
}

void put_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":\"";
  json_escape_to(os, e.name);
  os << "\",\"cat\":\"";
  json_escape_to(os, e.category);
  os << "\",\"ph\":\"X\",\"ts\":" << e.start_us << ",\"dur\":" << e.duration_us
     << ",\"pid\":1,\"tid\":" << e.tid;
  if (!e.args.empty()) {
    os << ",\"args\":{";
    bool first = true;
    for (const TraceArg& a : e.args) {
      if (!first) {
        os << ',';
      }
      put_arg(os, a);
      first = false;
    }
    os << '}';
  }
  os << '}';
}

std::string category_of(std::string_view name) {
  const auto dot = name.find('.');
  return std::string(dot == std::string_view::npos ? name
                                                   : name.substr(0, dot));
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_max_events(std::size_t cap) {
  const std::lock_guard lock(registry_mutex_);
  max_events_ = cap;
}

void Tracer::name_track(std::uint32_t tid, std::string_view name) {
  const std::lock_guard lock(registry_mutex_);
  for (auto& [id, existing] : track_names_) {
    if (id == tid) {
      existing = std::string(name);
      return;
    }
  }
  track_names_.emplace_back(tid, std::string(name));
}

std::uint32_t Tracer::this_thread_track() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t track =
      next.fetch_add(1, std::memory_order_relaxed);
  return track;
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuf& Tracer::buf_for_this_thread() {
  // One buffer per (tracer, thread); owned by the tracer so events outlive
  // the thread.  A raw pointer cache makes the steady-state path lock-free.
  thread_local ThreadBuf* cached = nullptr;
  thread_local const Tracer* cached_owner = nullptr;
  if (cached != nullptr && cached_owner == this) {
    return *cached;
  }
  const std::lock_guard lock(registry_mutex_);
  buffers_.push_back(std::make_unique<ThreadBuf>());
  cached = buffers_.back().get();
  cached_owner = this;
  return *cached;
}

void Tracer::record(TraceEvent event) {
  {
    // Cheap soft cap: approx_events_ is maintained under the registry lock
    // but read unlocked; exactness is not needed for a drop threshold.
    const std::lock_guard lock(registry_mutex_);
    if (approx_events_ >= max_events_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++approx_events_;
  }
  ThreadBuf& buf = buf_for_this_thread();
  const std::lock_guard lock(buf.mutex);
  buf.events.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
  const std::lock_guard lock(registry_mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    const std::lock_guard buf_lock(buf->mutex);
    total += buf->events.size();
  }
  return total;
}

void Tracer::write_json(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    const std::lock_guard lock(registry_mutex_);
    names = track_names_;
    for (const auto& buf : buffers_) {
      const std::lock_guard buf_lock(buf->mutex);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : names) {
    os << (first ? "" : ",")
       << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    json_escape_to(os, name);
    os << "\"}}";
    first = false;
  }
  for (const TraceEvent& e : events) {
    if (!first) {
      os << ',';
    }
    put_event(os, e);
    first = false;
  }
  os << "]}";
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  write_json(out);
  out.flush();
  return static_cast<bool>(out);
}

void Tracer::clear() {
  const std::lock_guard lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    const std::lock_guard buf_lock(buf->mutex);
    buf->events.clear();
  }
  track_names_.clear();
  approx_events_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

Span::Span(std::string_view name, std::initializer_list<TraceArg> args,
           std::uint32_t tid_override) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) {
    return;
  }
  live_ = true;
  event_.name = std::string(name);
  event_.category = category_of(name);
  event_.tid =
      tid_override != 0 ? tid_override : Tracer::this_thread_track();
  event_.args.assign(args.begin(), args.end());
  event_.start_us = tracer.now_us();
}

Span::~Span() { close(); }

void Span::arg(TraceArg a) {
  if (live_) {
    event_.args.push_back(std::move(a));
  }
}

void Span::close() {
  if (!live_) {
    return;
  }
  live_ = false;
  Tracer& tracer = Tracer::global();
  event_.duration_us = tracer.now_us() - event_.start_us;
  tracer.record(std::move(event_));
}

}  // namespace parowl::obs
