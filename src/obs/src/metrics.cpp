#include "parowl/obs/metrics.hpp"

#include <cmath>
#include <ostream>

namespace parowl::obs {
namespace {

/// Bucket index for a duration in microseconds: floor(log2(us)), clamped.
int bucket_for(double micros) {
  if (micros < 1.0) {
    return 0;
  }
  const int b = static_cast<int>(std::floor(std::log2(micros)));
  return b >= Histogram::kBuckets ? Histogram::kBuckets - 1 : b;
}

/// JSON-safe double: finite values only (NaN/inf have no JSON spelling).
void put_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  const auto flags = os.flags();
  const auto precision = os.precision();
  os.precision(15);
  os << v;
  os.precision(precision);
  os.flags(flags);
}

}  // namespace

unsigned Counter::shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this != &other) {
    reset();
    merge(other);
  }
  return *this;
}

void Histogram::record_seconds(double seconds) {
  const int b = bucket_for(seconds * 1e6);
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    buckets_[idx].fetch_add(
        other.buckets_[idx].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::approximate_total_seconds() const {
  double total = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const auto n =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    // Geometric midpoint of [2^i, 2^(i+1)) us.
    total += static_cast<double>(n) * std::ldexp(1.0, i) * 1.5 * 1e-6;
  }
  return total;
}

double Histogram::bucket_upper_seconds(int i) {
  return std::ldexp(1.0, i + 1) * 1e-6;
}

double Histogram::percentile_seconds(double p) const {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  const double target = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target) {
      return bucket_upper_seconds(i);
    }
  }
  return bucket_upper_seconds(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

void MetricsSnapshot::to_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << '"' << name << "\":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << '"' << name << "\":";
    put_double(os, value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h.count
       << ",\"p50_seconds\":";
    put_double(os, h.p50_seconds);
    os << ",\"p95_seconds\":";
    put_double(os, h.p95_seconds);
    os << ",\"p99_seconds\":";
    put_double(os, h.p99_seconds);
    os << ",\"total_seconds\":";
    put_double(os, h.total_seconds);
    // Buckets are emitted sparsely as [index, count] pairs: most of the 48
    // log2 buckets are empty for any one workload.
    os << ",\"buckets\":[";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (h.buckets[idx] == 0) {
        continue;
      }
      os << (bfirst ? "" : ",") << '[' << i << ',' << h.buckets[idx] << ']';
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << "}}";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end()) {
      return it->second;
    }
  }
  const std::unique_lock lock(mutex_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
      return it->second;
    }
  }
  const std::unique_lock lock(mutex_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = histograms_.find(name); it != histograms_.end()) {
      return it->second;
    }
  }
  const std::unique_lock lock(mutex_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::shared_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h.count();
    hs.p50_seconds = h.percentile_seconds(0.50);
    hs.p95_seconds = h.percentile_seconds(0.95);
    hs.p99_seconds = h.percentile_seconds(0.99);
    hs.total_seconds = h.approximate_total_seconds();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      hs.buckets[static_cast<std::size_t>(i)] = h.bucket(i);
    }
    snap.histograms.emplace_back(name, hs);
  }
  return snap;
}

void MetricsRegistry::to_json(std::ostream& os) const {
  snapshot().to_json(os);
}

void MetricsRegistry::reset() {
  const std::unique_lock lock(mutex_);
  for (auto& [name, c] : counters_) {
    c.reset();
  }
  for (auto& [name, g] : gauges_) {
    g.reset();
  }
  for (auto& [name, h] : histograms_) {
    h.reset();
  }
}

}  // namespace parowl::obs
