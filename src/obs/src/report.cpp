#include "parowl/obs/report.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "parowl/util/table.hpp"

namespace parowl::obs {
namespace {

std::string format_double(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

}  // namespace

double Field::as_double() const {
  switch (kind) {
    case Kind::kUInt:
      return static_cast<double>(uint_value);
    case Kind::kDouble:
      return double_value;
    case Kind::kBool:
      return bool_value ? 1.0 : 0.0;
    case Kind::kString:
      return 0.0;
  }
  return 0.0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void fields_to_json(const FieldList& fields, std::ostream& os) {
  os << '{';
  bool first = true;
  for (const Field& f : fields) {
    os << (first ? "" : ",") << '"' << json_escape(f.name) << "\":";
    switch (f.kind) {
      case Field::Kind::kUInt:
        os << f.uint_value;
        break;
      case Field::Kind::kDouble:
        os << format_double(f.double_value);
        break;
      case Field::Kind::kBool:
        os << (f.bool_value ? "true" : "false");
        break;
      case Field::Kind::kString:
        os << '"' << json_escape(f.string_value) << '"';
        break;
    }
    first = false;
  }
  os << '}';
}

void fields_to_table(const FieldList& fields, util::Table& table) {
  for (const Field& f : fields) {
    std::string value;
    switch (f.kind) {
      case Field::Kind::kUInt:
        value = std::to_string(f.uint_value);
        break;
      case Field::Kind::kDouble:
        value = format_double(f.double_value);
        break;
      case Field::Kind::kBool:
        value = f.bool_value ? "true" : "false";
        break;
      case Field::Kind::kString:
        value = f.string_value;
        break;
    }
    table.add_row({f.name, std::move(value)});
  }
}

void publish_fields(const FieldList& fields, std::string_view prefix,
                    MetricsRegistry& registry) {
  for (const Field& f : fields) {
    if (f.kind == Field::Kind::kString) {
      continue;
    }
    std::string name;
    name.reserve(prefix.size() + 1 + f.name.size());
    name.append(prefix);
    name.push_back('.');
    name.append(f.name);
    registry.gauge(name).set(f.as_double());
  }
}

}  // namespace parowl::obs
