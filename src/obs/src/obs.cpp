#include "parowl/obs/obs.hpp"

#include <fstream>
#include <mutex>

namespace parowl::obs {
namespace {

struct SinkState {
  std::mutex mutex;
  std::string trace_out;
  std::string metrics_out;
  std::uint32_t sample_every = 1;
};

SinkState& sinks() {
  static SinkState state;
  return state;
}

}  // namespace

void configure(const ObsOptions& options) {
  SinkState& state = sinks();
  const std::lock_guard lock(state.mutex);
  if (!options.trace_out.empty()) {
    state.trace_out = options.trace_out;
    Tracer::global().set_enabled(true);
  }
  if (!options.metrics_out.empty()) {
    state.metrics_out = options.metrics_out;
  }
  // Like the paths, the stride is monotonic: the default (1) never lowers
  // an earlier request — otherwise any nested driver configuring with
  // default-constructed ObsOptions would clobber the CLI's --sample-every.
  if (options.sample_every > 1) {
    state.sample_every = options.sample_every;
  }
}

std::uint32_t sample_stride() {
  SinkState& state = sinks();
  const std::lock_guard lock(state.mutex);
  return state.sample_every == 0 ? 1 : state.sample_every;
}

bool flush() {
  std::string trace_out;
  std::string metrics_out;
  {
    SinkState& state = sinks();
    const std::lock_guard lock(state.mutex);
    trace_out = state.trace_out;
    metrics_out = state.metrics_out;
  }
  bool ok = true;
  if (!trace_out.empty()) {
    ok = Tracer::global().write_file(trace_out) && ok;
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary | std::ios::trunc);
    if (out) {
      MetricsRegistry::global().to_json(out);
      out << '\n';
      out.flush();
      ok = static_cast<bool>(out) && ok;
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace parowl::obs
