#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parowl::obs {

/// Monotonic counter with cheap thread-local sharding: `add` is one relaxed
/// fetch_add on a cache-line-padded cell picked by the calling thread, so
/// any number of threads can hammer the same counter without bouncing a
/// single line.  `value()` sums the cells (exact — increments never race
/// away, they only land in different cells).
class Counter {
 public:
  static constexpr unsigned kShards = 16;

  void add(std::uint64_t n = 1) noexcept {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Cell& cell : cells_) {
      cell.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  /// Stable per-thread cell index: threads are striped over the shards in
  /// registration order, so a thread always hits the same cell.
  static unsigned shard_index() noexcept;

  std::array<Cell, kShards> cells_{};
};

/// Last-value instrument (queue depth, snapshot version, seconds spent).
/// `set` overwrites; `add` accumulates (relaxed CAS loop).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void add(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram: bucket i covers [2^i, 2^(i+1))
/// microseconds (bucket 0 also absorbs sub-microsecond samples), so 48
/// buckets span nanoseconds to days.  Recording is a single relaxed atomic
/// increment — safe from any number of threads — and percentiles read off
/// the bucket upper edges, bounding their error to the 2x bucket width.
///
/// This is the histogram the serving layer shipped first
/// (serve::LatencyHistogram is now an alias); it lives here so every layer
/// records latency into the same shape and the registry can export it.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  Histogram() = default;
  /// Copying merges (atomics are not copyable); used to snapshot stats.
  Histogram(const Histogram& other) { merge(other); }
  Histogram& operator=(const Histogram& other);

  /// Record one sample.  Thread-safe.
  void record_seconds(double seconds);

  /// Add every sample of `other` into this histogram.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const;

  /// Sum of recorded durations (bucket-midpoint approximation), seconds.
  [[nodiscard]] double approximate_total_seconds() const;

  /// The p-quantile (p in [0, 1]) in seconds: upper edge of the bucket
  /// containing the p-th sample.  Returns 0 when empty.
  [[nodiscard]] double percentile_seconds(double p) const;

  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Upper edge of bucket i, in seconds.
  [[nodiscard]] static double bucket_upper_seconds(int i);

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// One exported histogram, percentiles pre-computed.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double total_seconds = 0.0;  // bucket-midpoint approximation
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

/// Point-in-time copy of every instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  void to_json(std::ostream& os) const;
};

/// Process-wide registry of named instruments.  Lookup takes a shared lock
/// and returns a stable reference (instruments live in node-based maps and
/// are never removed), so hot paths resolve a name once — e.g. via
/// PAROWL_COUNT's function-local static — and then touch only the
/// instrument's atomics.
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& global();

  /// Find or create.  The returned reference is valid for the registry's
  /// lifetime.  Thread-safe.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void to_json(std::ostream& os) const;

  /// Zero every instrument (names stay registered).  Test support.
  void reset();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace parowl::obs

// Count into the global registry; the name is resolved once per call site.
// Compiles to nothing under PAROWL_OBS_DISABLED.
#ifndef PAROWL_OBS_DISABLED
#define PAROWL_COUNT(name, n)                                        \
  do {                                                               \
    static ::parowl::obs::Counter& parowl_count_cached_ =            \
        ::parowl::obs::MetricsRegistry::global().counter(name);      \
    parowl_count_cached_.add(static_cast<std::uint64_t>(n));         \
  } while (0)
#else
#define PAROWL_COUNT(name, n) static_cast<void>(0)
#endif
