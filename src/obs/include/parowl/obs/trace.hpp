#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parowl::obs {

/// One span argument.  Implicit constructors let call sites write
/// `{{"round", r}, {"worker", w}}` for the common value kinds without
/// touching a JSON library.
struct TraceArg {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };

  TraceArg(std::string_view k, int v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string_view k, long v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string_view k, long long v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string_view k, unsigned v)
      : key(k), kind(Kind::kInt), int_value(static_cast<std::int64_t>(v)) {}
  TraceArg(std::string_view k, unsigned long v)
      : key(k), kind(Kind::kInt), int_value(static_cast<std::int64_t>(v)) {}
  TraceArg(std::string_view k, unsigned long long v)
      : key(k), kind(Kind::kInt), int_value(static_cast<std::int64_t>(v)) {}
  TraceArg(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), double_value(v) {}
  TraceArg(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), string_value(v) {}
  TraceArg(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), string_value(v) {}

  std::string key;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// One complete ("ph":"X") trace event.
struct TraceEvent {
  std::string name;
  std::string category;       // derived from the name's "layer." prefix
  std::int64_t start_us = 0;  // relative to tracer epoch
  std::int64_t duration_us = 0;
  std::uint32_t tid = 0;
  std::vector<TraceArg> args;
};

/// Process-wide span collector.  Threads append completed spans to a
/// per-thread buffer (own mutex, contended only at write_json time); the
/// tracer owns the buffers so they survive thread exit.  Disabled by
/// default — `Span` construction is a single relaxed atomic load until
/// `set_enabled(true)`.
class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Cap on retained events; further spans are counted but dropped.
  void set_max_events(std::size_t cap);

  /// Attach a human-readable name to a track (a tid as rendered by
  /// Perfetto).  Instrumentation uses virtual tids (e.g. 100 + worker id)
  /// so per-worker rows exist even when workers are simulated on one
  /// thread.
  void name_track(std::uint32_t tid, std::string_view name);

  /// The calling thread's default track id (small dense ints, assigned on
  /// first use).
  static std::uint32_t this_thread_track();

  /// Microseconds since the tracer epoch (process-global steady origin).
  std::int64_t now_us() const;

  void record(TraceEvent event);

  /// Number of retained (not dropped) events.
  std::size_t event_count() const;
  std::size_t dropped_count() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Emit everything recorded so far as a Chrome trace-event JSON object
  /// ({"traceEvents":[...]}), Perfetto/chrome://tracing loadable.
  void write_json(std::ostream& os) const;

  /// write_json to `path`; returns false (and keeps the events) on I/O
  /// failure.
  bool write_file(const std::string& path) const;

  /// Drop all recorded events and track names.  Test support.
  void clear();

 private:
  struct ThreadBuf {
    std::mutex mutex;
    std::vector<TraceEvent> events;
  };

  Tracer();
  ThreadBuf& buf_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuf>> buffers_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::size_t approx_events_ = 0;

  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;
};

/// RAII span: captures the start time on construction (if tracing is
/// enabled) and records a complete event on destruction.  `tid_override`
/// pins the span to a virtual track — used by the cluster runtime to give
/// every worker its own Perfetto row regardless of the executing thread.
class Span {
 public:
  Span(std::string_view name, std::initializer_list<TraceArg> args = {},
       std::uint32_t tid_override = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an argument after construction (e.g. a result count known only
  /// at scope exit).  No-op when the span is not live.
  void arg(TraceArg a);

  /// End the span now instead of at scope exit: records the event and makes
  /// the destructor a no-op.  Safe to call on a non-live span.
  void close();

  [[nodiscard]] bool live() const noexcept { return live_; }

 private:
  bool live_ = false;
  TraceEvent event_;
};

}  // namespace parowl::obs

#define PAROWL_OBS_CAT2(a, b) a##b
#define PAROWL_OBS_CAT(a, b) PAROWL_OBS_CAT2(a, b)

// Open a span covering the rest of the enclosing scope:
//   PAROWL_SPAN("reason.round", {{"round", r}});
// Optional third argument pins a virtual track id.  Compiles to nothing
// under PAROWL_OBS_DISABLED.
#ifndef PAROWL_OBS_DISABLED
#define PAROWL_SPAN(...) \
  ::parowl::obs::Span PAROWL_OBS_CAT(parowl_span_, __LINE__) { __VA_ARGS__ }
#else
#define PAROWL_SPAN(...) static_cast<void>(0)
#endif
