#pragma once

#include <cstdint>
#include <string>

namespace parowl::obs {

/// Observability knobs shared by every layer's Options struct (embedded by
/// value in ForwardOptions, ClusterOptions, IngestOptions, ServiceOptions,
/// ...).  The CLI parses these once (`--trace-out`, `--metrics-out`,
/// `--sample-every`) and copies the result into whichever Options the
/// command builds; library code calls `obs::configure(options.obs)` at
/// entry, and only `obs::flush()` / `obs::Session` writes the files.
struct ObsOptions {
  /// Write a Chrome-trace-event JSON timeline here; empty disables tracing.
  std::string trace_out;
  /// Write a MetricsRegistry JSON snapshot here; empty skips the dump
  /// (metrics are still collected — counting is always on).
  std::string metrics_out;
  /// Record every Nth high-frequency span (e.g. per-request in serve).
  /// Structural spans (rounds, chunks) are always recorded.
  std::uint32_t sample_every = 1;

  [[nodiscard]] bool tracing_requested() const { return !trace_out.empty(); }
};

}  // namespace parowl::obs
