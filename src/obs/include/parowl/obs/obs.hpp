#pragma once

#include "parowl/obs/metrics.hpp"
#include "parowl/obs/options.hpp"
#include "parowl/obs/report.hpp"
#include "parowl/obs/trace.hpp"

namespace parowl::obs {

/// Apply `options` to the global tracer/registry: enables span collection
/// when a trace file is requested and remembers the output paths for
/// `flush()`.  Idempotent and cheap — every library driver calls it at
/// entry with its embedded ObsOptions, so observability works whether the
/// caller is the CLI, a bench, or a test.  Later calls with non-empty paths
/// win; empty paths never clobber an earlier request, and the default
/// sample_every (1) never lowers a previously requested stride.
void configure(const ObsOptions& options);

/// Effective sampling stride from the last `configure` (>= 1).
[[nodiscard]] std::uint32_t sample_stride();

/// Write the trace/metrics files requested by earlier `configure` calls.
/// Returns false if any requested write failed.  Safe to call with nothing
/// configured (no-op).
bool flush();

/// RAII wrapper for one CLI command / bench run: applies `options` on
/// construction, flushes on destruction.
class Session {
 public:
  explicit Session(const ObsOptions& options) { configure(options); }
  ~Session() { flush(); }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
};

}  // namespace parowl::obs
