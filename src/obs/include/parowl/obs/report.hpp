#pragma once

#include <cstdint>
#include <iosfwd>
#include <type_traits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "parowl/obs/metrics.hpp"

namespace parowl::util {
class Table;
}  // namespace parowl::util

namespace parowl::obs {

/// One named value of a stats struct.  The stats protocol reduces every
/// per-module stats type (ForwardStats, CommStats, IngestStats, ...) to a
/// flat list of these, so formatting, JSON export, and registry publishing
/// are written once instead of per struct.
struct Field {
  enum class Kind : std::uint8_t { kUInt, kDouble, kBool, kString };

  template <class I>
    requires(std::is_integral_v<I> && !std::is_same_v<I, bool>)
  Field(std::string_view n, I v)
      : name(n),
        kind(Kind::kUInt),
        uint_value(static_cast<std::uint64_t>(v)) {}
  Field(std::string_view n, double v)
      : name(n), kind(Kind::kDouble), double_value(v) {}
  Field(std::string_view n, bool v) : name(n), kind(Kind::kBool), bool_value(v) {}
  Field(std::string_view n, std::string v)
      : name(n), kind(Kind::kString), string_value(std::move(v)) {}
  Field(std::string_view n, const char* v)
      : name(n), kind(Kind::kString), string_value(v) {}

  /// Numeric view regardless of kind (strings read as 0); what publishing
  /// into the registry uses.
  [[nodiscard]] double as_double() const;

  std::string name;
  Kind kind;
  std::uint64_t uint_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string string_value;
};

using FieldList = std::vector<Field>;

[[nodiscard]] std::string json_escape(std::string_view s);

/// `{"a":1,"b":2.5,...}` in field order.
void fields_to_json(const FieldList& fields, std::ostream& os);

/// Append one `metric | value` row per field to `table` (the repo-wide
/// stats-table shape).
void fields_to_table(const FieldList& fields, util::Table& table);

/// Set one gauge per numeric field, named `<prefix>.<field>`.  Gauges (set
/// semantics) rather than counters so republishing the same stats object is
/// idempotent.
void publish_fields(const FieldList& fields, std::string_view prefix,
                    MetricsRegistry& registry = MetricsRegistry::global());

/// A stats type opts into the protocol by providing an ADL-visible free
/// function `FieldList fields(const X&)` next to its definition.
template <class T>
concept Reportable = requires(const T& t) {
  { fields(t) } -> std::convertible_to<FieldList>;
};

template <Reportable T>
void to_json(const T& stats, std::ostream& os) {
  fields_to_json(fields(stats), os);
}

template <Reportable T>
[[nodiscard]] std::string to_json(const T& stats) {
  std::ostringstream os;
  fields_to_json(fields(stats), os);
  return os.str();
}

template <Reportable T>
void print(const T& stats, util::Table& table) {
  fields_to_table(fields(stats), table);
}

template <Reportable T>
void publish(const T& stats, std::string_view prefix,
             MetricsRegistry& registry = MetricsRegistry::global()) {
  publish_fields(fields(stats), prefix, registry);
}

}  // namespace parowl::obs
