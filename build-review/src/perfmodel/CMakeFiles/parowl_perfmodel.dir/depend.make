# Empty dependencies file for parowl_perfmodel.
# This may be replaced when dependencies are built.
