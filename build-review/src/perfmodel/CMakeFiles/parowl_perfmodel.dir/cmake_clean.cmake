file(REMOVE_RECURSE
  "CMakeFiles/parowl_perfmodel.dir/src/polyfit.cpp.o"
  "CMakeFiles/parowl_perfmodel.dir/src/polyfit.cpp.o.d"
  "libparowl_perfmodel.a"
  "libparowl_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
