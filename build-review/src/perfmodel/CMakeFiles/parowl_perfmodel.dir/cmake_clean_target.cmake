file(REMOVE_RECURSE
  "libparowl_perfmodel.a"
)
