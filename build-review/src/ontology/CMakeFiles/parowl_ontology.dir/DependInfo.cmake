
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/src/ontology.cpp" "src/ontology/CMakeFiles/parowl_ontology.dir/src/ontology.cpp.o" "gcc" "src/ontology/CMakeFiles/parowl_ontology.dir/src/ontology.cpp.o.d"
  "/root/repo/src/ontology/src/vocabulary.cpp" "src/ontology/CMakeFiles/parowl_ontology.dir/src/vocabulary.cpp.o" "gcc" "src/ontology/CMakeFiles/parowl_ontology.dir/src/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
