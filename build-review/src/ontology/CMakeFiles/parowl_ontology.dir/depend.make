# Empty dependencies file for parowl_ontology.
# This may be replaced when dependencies are built.
