file(REMOVE_RECURSE
  "libparowl_ontology.a"
)
