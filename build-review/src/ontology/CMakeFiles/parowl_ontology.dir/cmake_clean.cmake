file(REMOVE_RECURSE
  "CMakeFiles/parowl_ontology.dir/src/ontology.cpp.o"
  "CMakeFiles/parowl_ontology.dir/src/ontology.cpp.o.d"
  "CMakeFiles/parowl_ontology.dir/src/vocabulary.cpp.o"
  "CMakeFiles/parowl_ontology.dir/src/vocabulary.cpp.o.d"
  "libparowl_ontology.a"
  "libparowl_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
