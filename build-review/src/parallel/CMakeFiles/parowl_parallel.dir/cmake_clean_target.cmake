file(REMOVE_RECURSE
  "libparowl_parallel.a"
)
