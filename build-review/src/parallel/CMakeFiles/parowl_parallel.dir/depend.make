# Empty dependencies file for parowl_parallel.
# This may be replaced when dependencies are built.
