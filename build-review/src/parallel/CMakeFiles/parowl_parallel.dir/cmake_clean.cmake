file(REMOVE_RECURSE
  "CMakeFiles/parowl_parallel.dir/src/async_sim.cpp.o"
  "CMakeFiles/parowl_parallel.dir/src/async_sim.cpp.o.d"
  "CMakeFiles/parowl_parallel.dir/src/cluster.cpp.o"
  "CMakeFiles/parowl_parallel.dir/src/cluster.cpp.o.d"
  "CMakeFiles/parowl_parallel.dir/src/pipeline.cpp.o"
  "CMakeFiles/parowl_parallel.dir/src/pipeline.cpp.o.d"
  "CMakeFiles/parowl_parallel.dir/src/router.cpp.o"
  "CMakeFiles/parowl_parallel.dir/src/router.cpp.o.d"
  "CMakeFiles/parowl_parallel.dir/src/transport.cpp.o"
  "CMakeFiles/parowl_parallel.dir/src/transport.cpp.o.d"
  "CMakeFiles/parowl_parallel.dir/src/worker.cpp.o"
  "CMakeFiles/parowl_parallel.dir/src/worker.cpp.o.d"
  "libparowl_parallel.a"
  "libparowl_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
