
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/src/async_sim.cpp" "src/parallel/CMakeFiles/parowl_parallel.dir/src/async_sim.cpp.o" "gcc" "src/parallel/CMakeFiles/parowl_parallel.dir/src/async_sim.cpp.o.d"
  "/root/repo/src/parallel/src/cluster.cpp" "src/parallel/CMakeFiles/parowl_parallel.dir/src/cluster.cpp.o" "gcc" "src/parallel/CMakeFiles/parowl_parallel.dir/src/cluster.cpp.o.d"
  "/root/repo/src/parallel/src/pipeline.cpp" "src/parallel/CMakeFiles/parowl_parallel.dir/src/pipeline.cpp.o" "gcc" "src/parallel/CMakeFiles/parowl_parallel.dir/src/pipeline.cpp.o.d"
  "/root/repo/src/parallel/src/router.cpp" "src/parallel/CMakeFiles/parowl_parallel.dir/src/router.cpp.o" "gcc" "src/parallel/CMakeFiles/parowl_parallel.dir/src/router.cpp.o.d"
  "/root/repo/src/parallel/src/transport.cpp" "src/parallel/CMakeFiles/parowl_parallel.dir/src/transport.cpp.o" "gcc" "src/parallel/CMakeFiles/parowl_parallel.dir/src/transport.cpp.o.d"
  "/root/repo/src/parallel/src/worker.cpp" "src/parallel/CMakeFiles/parowl_parallel.dir/src/worker.cpp.o" "gcc" "src/parallel/CMakeFiles/parowl_parallel.dir/src/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/partition/CMakeFiles/parowl_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reason/CMakeFiles/parowl_reason.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rules/CMakeFiles/parowl_rules.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ontology/CMakeFiles/parowl_ontology.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
