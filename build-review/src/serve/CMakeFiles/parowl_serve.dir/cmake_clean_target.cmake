file(REMOVE_RECURSE
  "libparowl_serve.a"
)
