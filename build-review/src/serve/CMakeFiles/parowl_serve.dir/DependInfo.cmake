
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/src/executor.cpp" "src/serve/CMakeFiles/parowl_serve.dir/src/executor.cpp.o" "gcc" "src/serve/CMakeFiles/parowl_serve.dir/src/executor.cpp.o.d"
  "/root/repo/src/serve/src/result_cache.cpp" "src/serve/CMakeFiles/parowl_serve.dir/src/result_cache.cpp.o" "gcc" "src/serve/CMakeFiles/parowl_serve.dir/src/result_cache.cpp.o.d"
  "/root/repo/src/serve/src/service.cpp" "src/serve/CMakeFiles/parowl_serve.dir/src/service.cpp.o" "gcc" "src/serve/CMakeFiles/parowl_serve.dir/src/service.cpp.o.d"
  "/root/repo/src/serve/src/snapshot.cpp" "src/serve/CMakeFiles/parowl_serve.dir/src/snapshot.cpp.o" "gcc" "src/serve/CMakeFiles/parowl_serve.dir/src/snapshot.cpp.o.d"
  "/root/repo/src/serve/src/stats.cpp" "src/serve/CMakeFiles/parowl_serve.dir/src/stats.cpp.o" "gcc" "src/serve/CMakeFiles/parowl_serve.dir/src/stats.cpp.o.d"
  "/root/repo/src/serve/src/updater.cpp" "src/serve/CMakeFiles/parowl_serve.dir/src/updater.cpp.o" "gcc" "src/serve/CMakeFiles/parowl_serve.dir/src/updater.cpp.o.d"
  "/root/repo/src/serve/src/workload.cpp" "src/serve/CMakeFiles/parowl_serve.dir/src/workload.cpp.o" "gcc" "src/serve/CMakeFiles/parowl_serve.dir/src/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/query/CMakeFiles/parowl_query.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reason/CMakeFiles/parowl_reason.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rules/CMakeFiles/parowl_rules.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ontology/CMakeFiles/parowl_ontology.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
