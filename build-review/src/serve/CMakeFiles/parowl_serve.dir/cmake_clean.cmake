file(REMOVE_RECURSE
  "CMakeFiles/parowl_serve.dir/src/executor.cpp.o"
  "CMakeFiles/parowl_serve.dir/src/executor.cpp.o.d"
  "CMakeFiles/parowl_serve.dir/src/result_cache.cpp.o"
  "CMakeFiles/parowl_serve.dir/src/result_cache.cpp.o.d"
  "CMakeFiles/parowl_serve.dir/src/service.cpp.o"
  "CMakeFiles/parowl_serve.dir/src/service.cpp.o.d"
  "CMakeFiles/parowl_serve.dir/src/snapshot.cpp.o"
  "CMakeFiles/parowl_serve.dir/src/snapshot.cpp.o.d"
  "CMakeFiles/parowl_serve.dir/src/stats.cpp.o"
  "CMakeFiles/parowl_serve.dir/src/stats.cpp.o.d"
  "CMakeFiles/parowl_serve.dir/src/updater.cpp.o"
  "CMakeFiles/parowl_serve.dir/src/updater.cpp.o.d"
  "CMakeFiles/parowl_serve.dir/src/workload.cpp.o"
  "CMakeFiles/parowl_serve.dir/src/workload.cpp.o.d"
  "libparowl_serve.a"
  "libparowl_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
