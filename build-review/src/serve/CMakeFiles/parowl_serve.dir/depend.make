# Empty dependencies file for parowl_serve.
# This may be replaced when dependencies are built.
