
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/src/bgp.cpp" "src/query/CMakeFiles/parowl_query.dir/src/bgp.cpp.o" "gcc" "src/query/CMakeFiles/parowl_query.dir/src/bgp.cpp.o.d"
  "/root/repo/src/query/src/sparql_parser.cpp" "src/query/CMakeFiles/parowl_query.dir/src/sparql_parser.cpp.o" "gcc" "src/query/CMakeFiles/parowl_query.dir/src/sparql_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rules/CMakeFiles/parowl_rules.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ontology/CMakeFiles/parowl_ontology.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
