# Empty dependencies file for parowl_query.
# This may be replaced when dependencies are built.
