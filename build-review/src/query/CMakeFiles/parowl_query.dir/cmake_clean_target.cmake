file(REMOVE_RECURSE
  "libparowl_query.a"
)
