file(REMOVE_RECURSE
  "CMakeFiles/parowl_query.dir/src/bgp.cpp.o"
  "CMakeFiles/parowl_query.dir/src/bgp.cpp.o.d"
  "CMakeFiles/parowl_query.dir/src/sparql_parser.cpp.o"
  "CMakeFiles/parowl_query.dir/src/sparql_parser.cpp.o.d"
  "libparowl_query.a"
  "libparowl_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
