file(REMOVE_RECURSE
  "libparowl_rules.a"
)
