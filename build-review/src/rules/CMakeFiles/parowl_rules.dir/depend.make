# Empty dependencies file for parowl_rules.
# This may be replaced when dependencies are built.
