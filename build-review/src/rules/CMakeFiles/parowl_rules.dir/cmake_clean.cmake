file(REMOVE_RECURSE
  "CMakeFiles/parowl_rules.dir/src/compiler.cpp.o"
  "CMakeFiles/parowl_rules.dir/src/compiler.cpp.o.d"
  "CMakeFiles/parowl_rules.dir/src/dependency_graph.cpp.o"
  "CMakeFiles/parowl_rules.dir/src/dependency_graph.cpp.o.d"
  "CMakeFiles/parowl_rules.dir/src/horst_rules.cpp.o"
  "CMakeFiles/parowl_rules.dir/src/horst_rules.cpp.o.d"
  "CMakeFiles/parowl_rules.dir/src/rule.cpp.o"
  "CMakeFiles/parowl_rules.dir/src/rule.cpp.o.d"
  "CMakeFiles/parowl_rules.dir/src/rule_parser.cpp.o"
  "CMakeFiles/parowl_rules.dir/src/rule_parser.cpp.o.d"
  "libparowl_rules.a"
  "libparowl_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
