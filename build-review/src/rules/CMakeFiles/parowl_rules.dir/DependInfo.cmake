
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/src/compiler.cpp" "src/rules/CMakeFiles/parowl_rules.dir/src/compiler.cpp.o" "gcc" "src/rules/CMakeFiles/parowl_rules.dir/src/compiler.cpp.o.d"
  "/root/repo/src/rules/src/dependency_graph.cpp" "src/rules/CMakeFiles/parowl_rules.dir/src/dependency_graph.cpp.o" "gcc" "src/rules/CMakeFiles/parowl_rules.dir/src/dependency_graph.cpp.o.d"
  "/root/repo/src/rules/src/horst_rules.cpp" "src/rules/CMakeFiles/parowl_rules.dir/src/horst_rules.cpp.o" "gcc" "src/rules/CMakeFiles/parowl_rules.dir/src/horst_rules.cpp.o.d"
  "/root/repo/src/rules/src/rule.cpp" "src/rules/CMakeFiles/parowl_rules.dir/src/rule.cpp.o" "gcc" "src/rules/CMakeFiles/parowl_rules.dir/src/rule.cpp.o.d"
  "/root/repo/src/rules/src/rule_parser.cpp" "src/rules/CMakeFiles/parowl_rules.dir/src/rule_parser.cpp.o" "gcc" "src/rules/CMakeFiles/parowl_rules.dir/src/rule_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ontology/CMakeFiles/parowl_ontology.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
