file(REMOVE_RECURSE
  "libparowl_gen.a"
)
