
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/src/lubm.cpp" "src/gen/CMakeFiles/parowl_gen.dir/src/lubm.cpp.o" "gcc" "src/gen/CMakeFiles/parowl_gen.dir/src/lubm.cpp.o.d"
  "/root/repo/src/gen/src/lubm_queries.cpp" "src/gen/CMakeFiles/parowl_gen.dir/src/lubm_queries.cpp.o" "gcc" "src/gen/CMakeFiles/parowl_gen.dir/src/lubm_queries.cpp.o.d"
  "/root/repo/src/gen/src/mdc.cpp" "src/gen/CMakeFiles/parowl_gen.dir/src/mdc.cpp.o" "gcc" "src/gen/CMakeFiles/parowl_gen.dir/src/mdc.cpp.o.d"
  "/root/repo/src/gen/src/uobm.cpp" "src/gen/CMakeFiles/parowl_gen.dir/src/uobm.cpp.o" "gcc" "src/gen/CMakeFiles/parowl_gen.dir/src/uobm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ontology/CMakeFiles/parowl_ontology.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
