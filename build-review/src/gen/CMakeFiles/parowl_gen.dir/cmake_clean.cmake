file(REMOVE_RECURSE
  "CMakeFiles/parowl_gen.dir/src/lubm.cpp.o"
  "CMakeFiles/parowl_gen.dir/src/lubm.cpp.o.d"
  "CMakeFiles/parowl_gen.dir/src/lubm_queries.cpp.o"
  "CMakeFiles/parowl_gen.dir/src/lubm_queries.cpp.o.d"
  "CMakeFiles/parowl_gen.dir/src/mdc.cpp.o"
  "CMakeFiles/parowl_gen.dir/src/mdc.cpp.o.d"
  "CMakeFiles/parowl_gen.dir/src/uobm.cpp.o"
  "CMakeFiles/parowl_gen.dir/src/uobm.cpp.o.d"
  "libparowl_gen.a"
  "libparowl_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
