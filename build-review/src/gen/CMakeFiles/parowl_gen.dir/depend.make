# Empty dependencies file for parowl_gen.
# This may be replaced when dependencies are built.
