file(REMOVE_RECURSE
  "libparowl_reason.a"
)
