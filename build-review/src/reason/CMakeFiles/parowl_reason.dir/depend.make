# Empty dependencies file for parowl_reason.
# This may be replaced when dependencies are built.
