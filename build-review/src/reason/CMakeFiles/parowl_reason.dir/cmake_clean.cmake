file(REMOVE_RECURSE
  "CMakeFiles/parowl_reason.dir/src/backward.cpp.o"
  "CMakeFiles/parowl_reason.dir/src/backward.cpp.o.d"
  "CMakeFiles/parowl_reason.dir/src/explain.cpp.o"
  "CMakeFiles/parowl_reason.dir/src/explain.cpp.o.d"
  "CMakeFiles/parowl_reason.dir/src/forward.cpp.o"
  "CMakeFiles/parowl_reason.dir/src/forward.cpp.o.d"
  "CMakeFiles/parowl_reason.dir/src/materialize.cpp.o"
  "CMakeFiles/parowl_reason.dir/src/materialize.cpp.o.d"
  "libparowl_reason.a"
  "libparowl_reason.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_reason.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
