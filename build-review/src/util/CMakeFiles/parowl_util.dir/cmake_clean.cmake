file(REMOVE_RECURSE
  "CMakeFiles/parowl_util.dir/src/log.cpp.o"
  "CMakeFiles/parowl_util.dir/src/log.cpp.o.d"
  "CMakeFiles/parowl_util.dir/src/rng.cpp.o"
  "CMakeFiles/parowl_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/parowl_util.dir/src/strings.cpp.o"
  "CMakeFiles/parowl_util.dir/src/strings.cpp.o.d"
  "CMakeFiles/parowl_util.dir/src/table.cpp.o"
  "CMakeFiles/parowl_util.dir/src/table.cpp.o.d"
  "CMakeFiles/parowl_util.dir/src/timer.cpp.o"
  "CMakeFiles/parowl_util.dir/src/timer.cpp.o.d"
  "libparowl_util.a"
  "libparowl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
