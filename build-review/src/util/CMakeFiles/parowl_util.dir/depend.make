# Empty dependencies file for parowl_util.
# This may be replaced when dependencies are built.
