file(REMOVE_RECURSE
  "libparowl_util.a"
)
