
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/src/log.cpp" "src/util/CMakeFiles/parowl_util.dir/src/log.cpp.o" "gcc" "src/util/CMakeFiles/parowl_util.dir/src/log.cpp.o.d"
  "/root/repo/src/util/src/rng.cpp" "src/util/CMakeFiles/parowl_util.dir/src/rng.cpp.o" "gcc" "src/util/CMakeFiles/parowl_util.dir/src/rng.cpp.o.d"
  "/root/repo/src/util/src/strings.cpp" "src/util/CMakeFiles/parowl_util.dir/src/strings.cpp.o" "gcc" "src/util/CMakeFiles/parowl_util.dir/src/strings.cpp.o.d"
  "/root/repo/src/util/src/table.cpp" "src/util/CMakeFiles/parowl_util.dir/src/table.cpp.o" "gcc" "src/util/CMakeFiles/parowl_util.dir/src/table.cpp.o.d"
  "/root/repo/src/util/src/timer.cpp" "src/util/CMakeFiles/parowl_util.dir/src/timer.cpp.o" "gcc" "src/util/CMakeFiles/parowl_util.dir/src/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
