file(REMOVE_RECURSE
  "CMakeFiles/parowl_partition.dir/src/data_partition.cpp.o"
  "CMakeFiles/parowl_partition.dir/src/data_partition.cpp.o.d"
  "CMakeFiles/parowl_partition.dir/src/graph.cpp.o"
  "CMakeFiles/parowl_partition.dir/src/graph.cpp.o.d"
  "CMakeFiles/parowl_partition.dir/src/metrics.cpp.o"
  "CMakeFiles/parowl_partition.dir/src/metrics.cpp.o.d"
  "CMakeFiles/parowl_partition.dir/src/multilevel.cpp.o"
  "CMakeFiles/parowl_partition.dir/src/multilevel.cpp.o.d"
  "CMakeFiles/parowl_partition.dir/src/owner_policy.cpp.o"
  "CMakeFiles/parowl_partition.dir/src/owner_policy.cpp.o.d"
  "CMakeFiles/parowl_partition.dir/src/rebalance.cpp.o"
  "CMakeFiles/parowl_partition.dir/src/rebalance.cpp.o.d"
  "CMakeFiles/parowl_partition.dir/src/rule_partition.cpp.o"
  "CMakeFiles/parowl_partition.dir/src/rule_partition.cpp.o.d"
  "libparowl_partition.a"
  "libparowl_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
