# Empty dependencies file for parowl_partition.
# This may be replaced when dependencies are built.
