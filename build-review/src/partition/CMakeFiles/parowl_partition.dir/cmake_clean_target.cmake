file(REMOVE_RECURSE
  "libparowl_partition.a"
)
