
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/src/data_partition.cpp" "src/partition/CMakeFiles/parowl_partition.dir/src/data_partition.cpp.o" "gcc" "src/partition/CMakeFiles/parowl_partition.dir/src/data_partition.cpp.o.d"
  "/root/repo/src/partition/src/graph.cpp" "src/partition/CMakeFiles/parowl_partition.dir/src/graph.cpp.o" "gcc" "src/partition/CMakeFiles/parowl_partition.dir/src/graph.cpp.o.d"
  "/root/repo/src/partition/src/metrics.cpp" "src/partition/CMakeFiles/parowl_partition.dir/src/metrics.cpp.o" "gcc" "src/partition/CMakeFiles/parowl_partition.dir/src/metrics.cpp.o.d"
  "/root/repo/src/partition/src/multilevel.cpp" "src/partition/CMakeFiles/parowl_partition.dir/src/multilevel.cpp.o" "gcc" "src/partition/CMakeFiles/parowl_partition.dir/src/multilevel.cpp.o.d"
  "/root/repo/src/partition/src/owner_policy.cpp" "src/partition/CMakeFiles/parowl_partition.dir/src/owner_policy.cpp.o" "gcc" "src/partition/CMakeFiles/parowl_partition.dir/src/owner_policy.cpp.o.d"
  "/root/repo/src/partition/src/rebalance.cpp" "src/partition/CMakeFiles/parowl_partition.dir/src/rebalance.cpp.o" "gcc" "src/partition/CMakeFiles/parowl_partition.dir/src/rebalance.cpp.o.d"
  "/root/repo/src/partition/src/rule_partition.cpp" "src/partition/CMakeFiles/parowl_partition.dir/src/rule_partition.cpp.o" "gcc" "src/partition/CMakeFiles/parowl_partition.dir/src/rule_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rules/CMakeFiles/parowl_rules.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reason/CMakeFiles/parowl_reason.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ontology/CMakeFiles/parowl_ontology.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
