file(REMOVE_RECURSE
  "CMakeFiles/parowl_rdf.dir/src/chunked_reader.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/chunked_reader.cpp.o.d"
  "CMakeFiles/parowl_rdf.dir/src/codec.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/codec.cpp.o.d"
  "CMakeFiles/parowl_rdf.dir/src/dictionary.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/dictionary.cpp.o.d"
  "CMakeFiles/parowl_rdf.dir/src/graph_stats.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/graph_stats.cpp.o.d"
  "CMakeFiles/parowl_rdf.dir/src/ntriples.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/ntriples.cpp.o.d"
  "CMakeFiles/parowl_rdf.dir/src/snapshot.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/snapshot.cpp.o.d"
  "CMakeFiles/parowl_rdf.dir/src/triple_store.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/triple_store.cpp.o.d"
  "CMakeFiles/parowl_rdf.dir/src/turtle.cpp.o"
  "CMakeFiles/parowl_rdf.dir/src/turtle.cpp.o.d"
  "libparowl_rdf.a"
  "libparowl_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
