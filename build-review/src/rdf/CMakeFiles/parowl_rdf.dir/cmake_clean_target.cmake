file(REMOVE_RECURSE
  "libparowl_rdf.a"
)
