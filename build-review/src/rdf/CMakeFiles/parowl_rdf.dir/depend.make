# Empty dependencies file for parowl_rdf.
# This may be replaced when dependencies are built.
