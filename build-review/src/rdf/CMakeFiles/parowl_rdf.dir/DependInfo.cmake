
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/src/chunked_reader.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/chunked_reader.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/chunked_reader.cpp.o.d"
  "/root/repo/src/rdf/src/codec.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/codec.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/codec.cpp.o.d"
  "/root/repo/src/rdf/src/dictionary.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/dictionary.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/dictionary.cpp.o.d"
  "/root/repo/src/rdf/src/graph_stats.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/graph_stats.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/graph_stats.cpp.o.d"
  "/root/repo/src/rdf/src/ntriples.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/ntriples.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/ntriples.cpp.o.d"
  "/root/repo/src/rdf/src/snapshot.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/snapshot.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/snapshot.cpp.o.d"
  "/root/repo/src/rdf/src/triple_store.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/triple_store.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/triple_store.cpp.o.d"
  "/root/repo/src/rdf/src/turtle.cpp" "src/rdf/CMakeFiles/parowl_rdf.dir/src/turtle.cpp.o" "gcc" "src/rdf/CMakeFiles/parowl_rdf.dir/src/turtle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
