# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_gen]=] "/root/repo/build-review/tools/parowl" "gen" "lubm" "--scale" "1" "-o" "/root/repo/build-review/cli_test_kb.nt")
set_tests_properties([=[cli_gen]=] PROPERTIES  FIXTURES_SETUP "cli_kb" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_info]=] "/root/repo/build-review/tools/parowl" "info" "/root/repo/build-review/cli_test_kb.nt")
set_tests_properties([=[cli_info]=] PROPERTIES  FIXTURES_REQUIRED "cli_kb" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_materialize]=] "/root/repo/build-review/tools/parowl" "materialize" "/root/repo/build-review/cli_test_kb.nt" "-o" "/root/repo/build-review/cli_test_kb.snap")
set_tests_properties([=[cli_materialize]=] PROPERTIES  FIXTURES_REQUIRED "cli_kb" FIXTURES_SETUP "cli_snap" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_query]=] "/root/repo/build-review/tools/parowl" "query" "/root/repo/build-review/cli_test_kb.snap" "SELECT DISTINCT ?x WHERE { ?x a ub:University }")
set_tests_properties([=[cli_query]=] PROPERTIES  FIXTURES_REQUIRED "cli_snap" PASS_REGULAR_EXPRESSION "result" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_partition]=] "/root/repo/build-review/tools/parowl" "partition" "/root/repo/build-review/cli_test_kb.nt" "-k" "4" "--policy" "lubm")
set_tests_properties([=[cli_partition]=] PROPERTIES  FIXTURES_REQUIRED "cli_kb" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_cluster]=] "/root/repo/build-review/tools/parowl" "cluster" "/root/repo/build-review/cli_test_kb.nt" "-k" "4" "--mode" "async")
set_tests_properties([=[cli_cluster]=] PROPERTIES  FIXTURES_REQUIRED "cli_kb" PASS_REGULAR_EXPRESSION "inferred" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_query_batch]=] "/root/repo/build-review/tools/parowl" "query" "/root/repo/build-review/cli_test_kb.snap" "--queries-file" "/root/repo/build-review/cli_test_queries.rq")
set_tests_properties([=[cli_query_batch]=] PROPERTIES  FIXTURES_REQUIRED "cli_snap" PASS_REGULAR_EXPRESSION "results" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;50;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_serve_bench]=] "/root/repo/build-review/tools/parowl" "serve-bench" "/root/repo/build-review/cli_test_kb.snap" "--threads" "2" "--clients" "2" "--requests" "64" "--queue" "16" "--update-batches" "2")
set_tests_properties([=[cli_serve_bench]=] PROPERTIES  FIXTURES_REQUIRED "cli_snap" PASS_REGULAR_EXPRESSION "throughput" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;56;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_usage]=] "/root/repo/build-review/tools/parowl")
set_tests_properties([=[cli_usage]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;63;add_test;/root/repo/tools/CMakeLists.txt;0;")
