# Empty compiler generated dependencies file for parowl.
# This may be replaced when dependencies are built.
