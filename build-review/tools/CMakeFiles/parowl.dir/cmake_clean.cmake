file(REMOVE_RECURSE
  "CMakeFiles/parowl.dir/parowl_cli.cpp.o"
  "CMakeFiles/parowl.dir/parowl_cli.cpp.o.d"
  "parowl"
  "parowl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parowl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
