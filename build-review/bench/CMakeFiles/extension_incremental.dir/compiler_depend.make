# Empty compiler generated dependencies file for extension_incremental.
# This may be replaced when dependencies are built.
