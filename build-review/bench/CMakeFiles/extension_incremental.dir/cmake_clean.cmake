file(REMOVE_RECURSE
  "CMakeFiles/extension_incremental.dir/extension_incremental.cpp.o"
  "CMakeFiles/extension_incremental.dir/extension_incremental.cpp.o.d"
  "extension_incremental"
  "extension_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
