file(REMOVE_RECURSE
  "CMakeFiles/extension_ingest.dir/extension_ingest.cpp.o"
  "CMakeFiles/extension_ingest.dir/extension_ingest.cpp.o.d"
  "extension_ingest"
  "extension_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
