# Empty compiler generated dependencies file for extension_ingest.
# This may be replaced when dependencies are built.
