# Empty dependencies file for extension_ingest.
# This may be replaced when dependencies are built.
