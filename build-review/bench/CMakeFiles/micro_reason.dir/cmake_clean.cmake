file(REMOVE_RECURSE
  "CMakeFiles/micro_reason.dir/micro_reason.cpp.o"
  "CMakeFiles/micro_reason.dir/micro_reason.cpp.o.d"
  "micro_reason"
  "micro_reason.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reason.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
