# Empty compiler generated dependencies file for micro_reason.
# This may be replaced when dependencies are built.
