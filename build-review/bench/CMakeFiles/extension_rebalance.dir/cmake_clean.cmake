file(REMOVE_RECURSE
  "CMakeFiles/extension_rebalance.dir/extension_rebalance.cpp.o"
  "CMakeFiles/extension_rebalance.dir/extension_rebalance.cpp.o.d"
  "extension_rebalance"
  "extension_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
