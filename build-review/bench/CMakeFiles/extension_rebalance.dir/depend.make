# Empty dependencies file for extension_rebalance.
# This may be replaced when dependencies are built.
