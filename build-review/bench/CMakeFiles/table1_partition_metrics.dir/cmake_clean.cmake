file(REMOVE_RECURSE
  "CMakeFiles/table1_partition_metrics.dir/table1_partition_metrics.cpp.o"
  "CMakeFiles/table1_partition_metrics.dir/table1_partition_metrics.cpp.o.d"
  "table1_partition_metrics"
  "table1_partition_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_partition_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
