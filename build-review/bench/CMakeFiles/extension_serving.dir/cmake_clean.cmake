file(REMOVE_RECURSE
  "CMakeFiles/extension_serving.dir/extension_serving.cpp.o"
  "CMakeFiles/extension_serving.dir/extension_serving.cpp.o.d"
  "extension_serving"
  "extension_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
