# Empty dependencies file for extension_serving.
# This may be replaced when dependencies are built.
