# Empty compiler generated dependencies file for extension_serving.
# This may be replaced when dependencies are built.
