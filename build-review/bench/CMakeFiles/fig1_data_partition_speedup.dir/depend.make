# Empty dependencies file for fig1_data_partition_speedup.
# This may be replaced when dependencies are built.
