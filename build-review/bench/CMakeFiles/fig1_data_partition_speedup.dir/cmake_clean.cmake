file(REMOVE_RECURSE
  "CMakeFiles/fig1_data_partition_speedup.dir/fig1_data_partition_speedup.cpp.o"
  "CMakeFiles/fig1_data_partition_speedup.dir/fig1_data_partition_speedup.cpp.o.d"
  "fig1_data_partition_speedup"
  "fig1_data_partition_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_data_partition_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
