# Empty dependencies file for fig4_perf_model.
# This may be replaced when dependencies are built.
