file(REMOVE_RECURSE
  "CMakeFiles/fig4_perf_model.dir/fig4_perf_model.cpp.o"
  "CMakeFiles/fig4_perf_model.dir/fig4_perf_model.cpp.o.d"
  "fig4_perf_model"
  "fig4_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
