# Empty dependencies file for extension_fault_overhead.
# This may be replaced when dependencies are built.
