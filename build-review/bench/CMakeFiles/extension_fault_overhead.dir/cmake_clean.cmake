file(REMOVE_RECURSE
  "CMakeFiles/extension_fault_overhead.dir/extension_fault_overhead.cpp.o"
  "CMakeFiles/extension_fault_overhead.dir/extension_fault_overhead.cpp.o.d"
  "extension_fault_overhead"
  "extension_fault_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_fault_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
