# Empty compiler generated dependencies file for extension_hybrid.
# This may be replaced when dependencies are built.
