file(REMOVE_RECURSE
  "CMakeFiles/extension_hybrid.dir/extension_hybrid.cpp.o"
  "CMakeFiles/extension_hybrid.dir/extension_hybrid.cpp.o.d"
  "extension_hybrid"
  "extension_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
