file(REMOVE_RECURSE
  "CMakeFiles/fig2_overhead_breakdown.dir/fig2_overhead_breakdown.cpp.o"
  "CMakeFiles/fig2_overhead_breakdown.dir/fig2_overhead_breakdown.cpp.o.d"
  "fig2_overhead_breakdown"
  "fig2_overhead_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
