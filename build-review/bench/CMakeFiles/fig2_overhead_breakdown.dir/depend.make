# Empty dependencies file for fig2_overhead_breakdown.
# This may be replaced when dependencies are built.
