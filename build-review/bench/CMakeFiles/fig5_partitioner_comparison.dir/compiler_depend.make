# Empty compiler generated dependencies file for fig5_partitioner_comparison.
# This may be replaced when dependencies are built.
