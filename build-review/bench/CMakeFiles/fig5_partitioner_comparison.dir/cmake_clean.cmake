file(REMOVE_RECURSE
  "CMakeFiles/fig5_partitioner_comparison.dir/fig5_partitioner_comparison.cpp.o"
  "CMakeFiles/fig5_partitioner_comparison.dir/fig5_partitioner_comparison.cpp.o.d"
  "fig5_partitioner_comparison"
  "fig5_partitioner_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_partitioner_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
