# Empty compiler generated dependencies file for micro_rdf.
# This may be replaced when dependencies are built.
