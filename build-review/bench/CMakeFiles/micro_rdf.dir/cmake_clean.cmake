file(REMOVE_RECURSE
  "CMakeFiles/micro_rdf.dir/micro_rdf.cpp.o"
  "CMakeFiles/micro_rdf.dir/micro_rdf.cpp.o.d"
  "micro_rdf"
  "micro_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
