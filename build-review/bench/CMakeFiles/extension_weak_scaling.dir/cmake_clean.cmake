file(REMOVE_RECURSE
  "CMakeFiles/extension_weak_scaling.dir/extension_weak_scaling.cpp.o"
  "CMakeFiles/extension_weak_scaling.dir/extension_weak_scaling.cpp.o.d"
  "extension_weak_scaling"
  "extension_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
