# Empty dependencies file for extension_weak_scaling.
# This may be replaced when dependencies are built.
