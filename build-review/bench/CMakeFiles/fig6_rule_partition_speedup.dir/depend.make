# Empty dependencies file for fig6_rule_partition_speedup.
# This may be replaced when dependencies are built.
