file(REMOVE_RECURSE
  "CMakeFiles/fig6_rule_partition_speedup.dir/fig6_rule_partition_speedup.cpp.o"
  "CMakeFiles/fig6_rule_partition_speedup.dir/fig6_rule_partition_speedup.cpp.o.d"
  "fig6_rule_partition_speedup"
  "fig6_rule_partition_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rule_partition_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
