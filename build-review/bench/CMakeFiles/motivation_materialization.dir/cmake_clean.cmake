file(REMOVE_RECURSE
  "CMakeFiles/motivation_materialization.dir/motivation_materialization.cpp.o"
  "CMakeFiles/motivation_materialization.dir/motivation_materialization.cpp.o.d"
  "motivation_materialization"
  "motivation_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
