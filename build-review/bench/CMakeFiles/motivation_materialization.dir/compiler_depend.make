# Empty compiler generated dependencies file for motivation_materialization.
# This may be replaced when dependencies are built.
