# Empty compiler generated dependencies file for horst_sweep_test.
# This may be replaced when dependencies are built.
