file(REMOVE_RECURSE
  "CMakeFiles/horst_sweep_test.dir/horst_sweep_test.cpp.o"
  "CMakeFiles/horst_sweep_test.dir/horst_sweep_test.cpp.o.d"
  "horst_sweep_test"
  "horst_sweep_test.pdb"
  "horst_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horst_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
