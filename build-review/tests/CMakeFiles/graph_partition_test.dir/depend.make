# Empty dependencies file for graph_partition_test.
# This may be replaced when dependencies are built.
