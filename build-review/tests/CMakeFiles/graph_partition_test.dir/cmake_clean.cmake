file(REMOVE_RECURSE
  "CMakeFiles/graph_partition_test.dir/graph_partition_test.cpp.o"
  "CMakeFiles/graph_partition_test.dir/graph_partition_test.cpp.o.d"
  "graph_partition_test"
  "graph_partition_test.pdb"
  "graph_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
