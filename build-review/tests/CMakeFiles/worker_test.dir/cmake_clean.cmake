file(REMOVE_RECURSE
  "CMakeFiles/worker_test.dir/worker_test.cpp.o"
  "CMakeFiles/worker_test.dir/worker_test.cpp.o.d"
  "worker_test"
  "worker_test.pdb"
  "worker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
