# Empty compiler generated dependencies file for worker_test.
# This may be replaced when dependencies are built.
