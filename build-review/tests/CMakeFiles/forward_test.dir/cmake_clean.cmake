file(REMOVE_RECURSE
  "CMakeFiles/forward_test.dir/forward_test.cpp.o"
  "CMakeFiles/forward_test.dir/forward_test.cpp.o.d"
  "forward_test"
  "forward_test.pdb"
  "forward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
