file(REMOVE_RECURSE
  "CMakeFiles/pipeline_validation_test.dir/pipeline_validation_test.cpp.o"
  "CMakeFiles/pipeline_validation_test.dir/pipeline_validation_test.cpp.o.d"
  "pipeline_validation_test"
  "pipeline_validation_test.pdb"
  "pipeline_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
