file(REMOVE_RECURSE
  "CMakeFiles/turtle_test.dir/turtle_test.cpp.o"
  "CMakeFiles/turtle_test.dir/turtle_test.cpp.o.d"
  "turtle_test"
  "turtle_test.pdb"
  "turtle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turtle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
