# Empty compiler generated dependencies file for turtle_test.
# This may be replaced when dependencies are built.
