# Empty dependencies file for ingest_equivalence_test.
# This may be replaced when dependencies are built.
