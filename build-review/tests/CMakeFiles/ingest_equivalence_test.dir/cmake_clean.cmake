file(REMOVE_RECURSE
  "CMakeFiles/ingest_equivalence_test.dir/ingest_equivalence_test.cpp.o"
  "CMakeFiles/ingest_equivalence_test.dir/ingest_equivalence_test.cpp.o.d"
  "ingest_equivalence_test"
  "ingest_equivalence_test.pdb"
  "ingest_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingest_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
