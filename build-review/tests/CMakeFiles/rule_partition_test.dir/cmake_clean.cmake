file(REMOVE_RECURSE
  "CMakeFiles/rule_partition_test.dir/rule_partition_test.cpp.o"
  "CMakeFiles/rule_partition_test.dir/rule_partition_test.cpp.o.d"
  "rule_partition_test"
  "rule_partition_test.pdb"
  "rule_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
