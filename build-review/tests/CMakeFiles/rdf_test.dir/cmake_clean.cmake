file(REMOVE_RECURSE
  "CMakeFiles/rdf_test.dir/rdf_test.cpp.o"
  "CMakeFiles/rdf_test.dir/rdf_test.cpp.o.d"
  "rdf_test"
  "rdf_test.pdb"
  "rdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
