file(REMOVE_RECURSE
  "CMakeFiles/lubm_queries_test.dir/lubm_queries_test.cpp.o"
  "CMakeFiles/lubm_queries_test.dir/lubm_queries_test.cpp.o.d"
  "lubm_queries_test"
  "lubm_queries_test.pdb"
  "lubm_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lubm_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
