# Empty compiler generated dependencies file for lubm_queries_test.
# This may be replaced when dependencies are built.
