# Empty compiler generated dependencies file for backward_test.
# This may be replaced when dependencies are built.
