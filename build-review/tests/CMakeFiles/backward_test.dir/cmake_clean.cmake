file(REMOVE_RECURSE
  "CMakeFiles/backward_test.dir/backward_test.cpp.o"
  "CMakeFiles/backward_test.dir/backward_test.cpp.o.d"
  "backward_test"
  "backward_test.pdb"
  "backward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
