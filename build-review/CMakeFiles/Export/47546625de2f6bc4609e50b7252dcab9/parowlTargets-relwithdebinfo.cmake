#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "parowl::parowl_util" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_util.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_util )
list(APPEND _cmake_import_check_files_for_parowl::parowl_util "${_IMPORT_PREFIX}/lib/libparowl_util.a" )

# Import target "parowl::parowl_rdf" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_rdf APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_rdf PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_rdf.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_rdf )
list(APPEND _cmake_import_check_files_for_parowl::parowl_rdf "${_IMPORT_PREFIX}/lib/libparowl_rdf.a" )

# Import target "parowl::parowl_ontology" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_ontology APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_ontology PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_ontology.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_ontology )
list(APPEND _cmake_import_check_files_for_parowl::parowl_ontology "${_IMPORT_PREFIX}/lib/libparowl_ontology.a" )

# Import target "parowl::parowl_rules" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_rules APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_rules PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_rules.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_rules )
list(APPEND _cmake_import_check_files_for_parowl::parowl_rules "${_IMPORT_PREFIX}/lib/libparowl_rules.a" )

# Import target "parowl::parowl_reason" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_reason APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_reason PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_reason.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_reason )
list(APPEND _cmake_import_check_files_for_parowl::parowl_reason "${_IMPORT_PREFIX}/lib/libparowl_reason.a" )

# Import target "parowl::parowl_query" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_query APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_query PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_query.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_query )
list(APPEND _cmake_import_check_files_for_parowl::parowl_query "${_IMPORT_PREFIX}/lib/libparowl_query.a" )

# Import target "parowl::parowl_serve" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_serve APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_serve PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_serve.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_serve )
list(APPEND _cmake_import_check_files_for_parowl::parowl_serve "${_IMPORT_PREFIX}/lib/libparowl_serve.a" )

# Import target "parowl::parowl_partition" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_partition APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_partition PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_partition.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_partition )
list(APPEND _cmake_import_check_files_for_parowl::parowl_partition "${_IMPORT_PREFIX}/lib/libparowl_partition.a" )

# Import target "parowl::parowl_parallel" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_parallel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_parallel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_parallel.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_parallel )
list(APPEND _cmake_import_check_files_for_parowl::parowl_parallel "${_IMPORT_PREFIX}/lib/libparowl_parallel.a" )

# Import target "parowl::parowl_gen" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_gen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_gen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_gen.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_gen )
list(APPEND _cmake_import_check_files_for_parowl::parowl_gen "${_IMPORT_PREFIX}/lib/libparowl_gen.a" )

# Import target "parowl::parowl_perfmodel" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl_perfmodel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl_perfmodel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libparowl_perfmodel.a"
  )

list(APPEND _cmake_import_check_targets parowl::parowl_perfmodel )
list(APPEND _cmake_import_check_files_for_parowl::parowl_perfmodel "${_IMPORT_PREFIX}/lib/libparowl_perfmodel.a" )

# Import target "parowl::parowl" for configuration "RelWithDebInfo"
set_property(TARGET parowl::parowl APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(parowl::parowl PROPERTIES
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/bin/parowl"
  )

list(APPEND _cmake_import_check_targets parowl::parowl )
list(APPEND _cmake_import_check_files_for_parowl::parowl "${_IMPORT_PREFIX}/bin/parowl" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
