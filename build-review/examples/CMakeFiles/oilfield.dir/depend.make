# Empty dependencies file for oilfield.
# This may be replaced when dependencies are built.
