file(REMOVE_RECURSE
  "CMakeFiles/oilfield.dir/oilfield.cpp.o"
  "CMakeFiles/oilfield.dir/oilfield.cpp.o.d"
  "oilfield"
  "oilfield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oilfield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
