# Empty compiler generated dependencies file for provenance.
# This may be replaced when dependencies are built.
