file(REMOVE_RECURSE
  "CMakeFiles/provenance.dir/provenance.cpp.o"
  "CMakeFiles/provenance.dir/provenance.cpp.o.d"
  "provenance"
  "provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
