file(REMOVE_RECURSE
  "CMakeFiles/sensor_feed.dir/sensor_feed.cpp.o"
  "CMakeFiles/sensor_feed.dir/sensor_feed.cpp.o.d"
  "sensor_feed"
  "sensor_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
