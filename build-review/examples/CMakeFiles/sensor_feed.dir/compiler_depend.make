# Empty compiler generated dependencies file for sensor_feed.
# This may be replaced when dependencies are built.
