# Empty compiler generated dependencies file for rule_partition_demo.
# This may be replaced when dependencies are built.
