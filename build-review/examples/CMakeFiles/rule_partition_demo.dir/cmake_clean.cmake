file(REMOVE_RECURSE
  "CMakeFiles/rule_partition_demo.dir/rule_partition_demo.cpp.o"
  "CMakeFiles/rule_partition_demo.dir/rule_partition_demo.cpp.o.d"
  "rule_partition_demo"
  "rule_partition_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_partition_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
