# Empty dependencies file for lubm_cluster.
# This may be replaced when dependencies are built.
