file(REMOVE_RECURSE
  "CMakeFiles/lubm_cluster.dir/lubm_cluster.cpp.o"
  "CMakeFiles/lubm_cluster.dir/lubm_cluster.cpp.o.d"
  "lubm_cluster"
  "lubm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lubm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
