
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/lubm_cluster.cpp" "examples/CMakeFiles/lubm_cluster.dir/lubm_cluster.cpp.o" "gcc" "examples/CMakeFiles/lubm_cluster.dir/lubm_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/parowl_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rdf/CMakeFiles/parowl_rdf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ontology/CMakeFiles/parowl_ontology.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rules/CMakeFiles/parowl_rules.dir/DependInfo.cmake"
  "/root/repo/build-review/src/reason/CMakeFiles/parowl_reason.dir/DependInfo.cmake"
  "/root/repo/build-review/src/query/CMakeFiles/parowl_query.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/parowl_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/parowl_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gen/CMakeFiles/parowl_gen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/perfmodel/CMakeFiles/parowl_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
