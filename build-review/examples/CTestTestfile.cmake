# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build-review/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  PASS_REGULAR_EXPRESSION "ancestorOf" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_lubm_cluster]=] "/root/repo/build-review/examples/lubm_cluster" "2" "2")
set_tests_properties([=[example_lubm_cluster]=] PROPERTIES  PASS_REGULAR_EXPRESSION "same closure" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_oilfield]=] "/root/repo/build-review/examples/oilfield" "2" "2")
set_tests_properties([=[example_oilfield]=] PROPERTIES  PASS_REGULAR_EXPRESSION "monitored assets" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_rule_partition_demo]=] "/root/repo/build-review/examples/rule_partition_demo" "2")
set_tests_properties([=[example_rule_partition_demo]=] PROPERTIES  PASS_REGULAR_EXPRESSION "results identical" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_provenance]=] "/root/repo/build-review/examples/provenance" "1")
set_tests_properties([=[example_provenance]=] PROPERTIES  PASS_REGULAR_EXPRESSION "asserted" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sensor_feed]=] "/root/repo/build-review/examples/sensor_feed" "1" "2")
set_tests_properties([=[example_sensor_feed]=] PROPERTIES  PASS_REGULAR_EXPRESSION "no re-reasoning" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
