# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-review/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-review/tools/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-review/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-review/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-review/examples/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/util/libparowl_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/rdf/libparowl_rdf.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/ontology/libparowl_ontology.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/rules/libparowl_rules.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/reason/libparowl_reason.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/query/libparowl_query.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/serve/libparowl_serve.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/partition/libparowl_partition.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/parallel/libparowl_parallel.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/gen/libparowl_gen.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/perfmodel/libparowl_perfmodel.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/parowl" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/parowl")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/parowl"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build-review/tools/parowl")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/parowl" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/parowl")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/parowl")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/util/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/rdf/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/ontology/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/rules/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/reason/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/query/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/serve/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/partition/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/parallel/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/gen/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/perfmodel/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/parowl/parowlTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/parowl/parowlTargets.cmake"
         "/root/repo/build-review/CMakeFiles/Export/47546625de2f6bc4609e50b7252dcab9/parowlTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/parowl/parowlTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/parowl/parowlTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/parowl" TYPE FILE FILES "/root/repo/build-review/CMakeFiles/Export/47546625de2f6bc4609e50b7252dcab9/parowlTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/parowl" TYPE FILE FILES "/root/repo/build-review/CMakeFiles/Export/47546625de2f6bc4609e50b7252dcab9/parowlTargets-relwithdebinfo.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/parowl" TYPE FILE FILES
    "/root/repo/build-review/parowlConfig.cmake"
    "/root/repo/build-review/parowlConfigVersion.cmake"
    )
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build-review/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
