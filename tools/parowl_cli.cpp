// parowl — command-line frontend for the parallel OWL reasoner.
//
//   parowl gen lubm --scale 4 -o data.nt        generate a benchmark KB
//   parowl info data.nt                         show KB statistics
//   parowl materialize data.nt -o full.snap     compute the OWL-Horst closure
//   parowl query full.snap 'SELECT ...'         run a SPARQL-subset query
//   parowl partition data.nt -k 8 --policy graph   partition + metrics
//   parowl cluster data.nt -k 8 [--approach data|rule|hybrid] [--mode sync|async]
//   parowl serve-bench full.snap --threads 4       drive the serving layer
//   parowl serve-dist full.snap --partitions 4 --replicas 2   distributed tier
//
// Input format is chosen by extension: .nt (N-Triples), .ttl (Turtle),
// .snap (binary snapshot); output likewise (.snap or .nt).

#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "parowl/dist/service.hpp"
#include "parowl/gen/lubm.hpp"
#include "parowl/obs/obs.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/partition/rebalance.hpp"
#include "parowl/gen/lubm_queries.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/gen/sameas.hpp"
#include "parowl/gen/uobm.hpp"
#include "parowl/query/equality_expand.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/serve/service.hpp"
#include "parowl/serve/workload.hpp"
#include "parowl/reason/explain.hpp"
#include "parowl/rules/rule_parser.hpp"
#include "parowl/rdf/chunked_reader.hpp"
#include "parowl/rdf/graph_stats.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/rdf/turtle.hpp"
#include "parowl/reason/maintain.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/util/table.hpp"
#include "parowl/util/timer.hpp"

namespace {

using namespace parowl;

int usage() {
  std::cerr <<
      R"(usage: parowl <command> [options]

commands:
  gen <lubm|uobm|mdc|sameas> [--scale N] [--seed S] -o <file>
      (sameas: clique-heavy equality workload; --scale multiplies the
       individual count, --max-clique caps the alias clique size)
  info <kb>
  load-bench <kb.nt|kb.ttl> [--max-threads N]   (parallel-ingest sweep)
  materialize <kb> [-o <file>] [--strategy forward|query] [--no-compile]
              [--rules <file>] [--threads N] [--no-dispatch] [--no-devirt]
              [--equality-mode naive|rewrite]
              (rewrite: intercept owl:sameAs into a class map and keep the
               closure in representative space; a -o .snap then carries the
               map — v3 — and query/serve expand answers through it)
  update <kb> [--adds-file <nt>] [--deletes-file <nt>] [-o <file>]
          [--strategy dred|fbf] [--threads N]
          (incremental maintenance: retract/add against the asserted base,
           delete-and-rederive the closure; kb is the *base*, not a closure)
  query <kb> <sparql> [--reason] [--equality-mode naive|rewrite]
  query <kb> --queries-file <file> [--reason]   (one query per line)
  explain <kb> <s> <p> <o>       (terms as full IRIs; reasons, then proves)
  partition <kb> -k N [--policy graph|hash|lubm|mdc] [partitioner options]
  cluster <kb> -k N [--policy ...] [--approach data|rule|hybrid]
          [partitioner options]
          [--rule-parts M] [--strategy ...]
          [--exec-mode sync|threaded|async|async-threaded|async-sim]
          [--no-steal] [--steal-batch N] [--chunk N]   (async modes)
          [--faults seed=S,drop=P,dup=P,corrupt=P,delay=P,reorder=P]
          [--checkpoint-dir <dir>]
  run     alias for cluster; accepts --partitions N for -k N
  serve-bench <kb> [--reason] [--equality-mode naive|rewrite]
          [--threads N] [--queue N] [--requests N]
          [--mode open|closed] [--rate QPS] [--clients N] [--think S]
          [--deadline S] [--no-cache] [--seed S] [--queries-file <file>]
          [--update-batches N] [--update-size M] [--delete-ratio R]
          [--strategy dred|fbf]
          (R>0 turns the writer into a mixed stream: each batch deletes
           R*M previously added triples and adds M new ones)
  serve-dist <kb> [--reason] [--equality-mode naive|rewrite]
          --partitions N [--replicas R] [--policy ...]
          [partitioner options]
          [--faults seed=S,drop=P,...] [serve-bench workload options]
          (sharded serving tier: scatter/gather over partition replicas)

partitioner options (partition / cluster / run / serve-dist):
  --partitioner multilevel|hdrf|fennel|ne   algorithm behind the graph
          policy; the streaming kinds (hdrf/fennel/ne) assign owners in one
          pass over the ingest stream with O(vertices) state — `run` feeds
          them straight from the parallel reader, never building the full
          resource graph
  --balance-slack S          allowed load imbalance (default 0.05)
  --split-merge-factor M     over-partition to k*M fine parts, then greedily
          merge back to k maximizing co-replication (default 1 = off)

kb files: .nt (N-Triples), .ttl (Turtle), .snap (binary snapshot)
every command that loads a .nt/.ttl KB accepts --load-threads N
(parallel ingest; the loaded KB is bit-identical for any N)

observability (every command):
  --trace-out FILE     write a Chrome/Perfetto trace of the run
  --metrics-out FILE   write the metrics-registry snapshot as JSON
  --sample-every N     trace every Nth serve request (default 1)
)";
  return 2;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// `equality` non-null makes v3 snapshots (representative-space closure +
/// class map) loadable; commands that cannot expand answers leave it null
/// and get a clear rejection from the v2-only loader instead of silently
/// wrong answers.
bool load_kb(const std::string& path, rdf::Dictionary& dict,
             rdf::TripleStore& store, unsigned load_threads = 1,
             rdf::EqualityClassMap* equality = nullptr,
             std::function<void(std::span<const rdf::Triple>)> chunk_sink =
                 {}) {
  if (ends_with(path, ".snap")) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return false;
    }
    std::string error;
    const bool ok =
        equality != nullptr
            ? rdf::load_snapshot(in, dict, store, *equality, &error)
            : rdf::load_snapshot(in, dict, store, &error);
    if (!ok) {
      std::cerr << "bad snapshot " << path << ": " << error << "\n";
      return false;
    }
    if (chunk_sink) {
      // Snapshots arrive whole; the stream degenerates to one chunk.
      chunk_sink(store.triples());
    }
    return true;
  }
  rdf::IngestOptions opts;
  opts.threads = load_threads;
  opts.chunk_sink = std::move(chunk_sink);
  rdf::IngestStats stats;
  std::string error;
  if (!rdf::ingest_file(path, dict, store, stats, opts, &error)) {
    std::cerr << "cannot load " << path << ": " << error << "\n";
    return false;
  }
  if (stats.parse.bad_lines > 0) {
    std::cerr << "warning: " << stats.parse.bad_lines
              << " malformed statements (" << stats.parse.first_error
              << ")\n";
  }
  return true;
}

bool save_kb(const std::string& path, const rdf::Dictionary& dict,
             const rdf::TripleStore& store,
             const rdf::EqualityClassMap* equality = nullptr) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  if (ends_with(path, ".snap")) {
    rdf::save_snapshot(out, dict, store, equality);
  } else {
    if (equality != nullptr && !equality->empty()) {
      std::cerr << "warning: " << path
                << " is N-Triples — writing the representative-space store "
                   "without its equality class map (use a .snap output to "
                   "keep it)\n";
    }
    rdf::write_ntriples(out, store, dict);
  }
  return out.good();
}

/// Load a triple file (.nt/.ttl/.snap) into a vector, interning into the
/// caller's dictionary — the add/delete batch loader for `update`.
bool load_triples(const std::string& path, rdf::Dictionary& dict,
                  std::vector<rdf::Triple>& out) {
  rdf::TripleStore tmp;
  if (!load_kb(path, dict, tmp)) {
    return false;
  }
  out = tmp.triples();
  return true;
}

/// Minimal flag scanner: --name value / --flag / -k value.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      args_.emplace_back(argv[i]);
    }
  }

  /// Positional argument at `index` (flags excluded).
  [[nodiscard]] std::string positional(std::size_t index) const {
    std::size_t seen = 0;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].starts_with("-")) {
        if (has_value(args_[i])) {
          ++i;
        }
        continue;
      }
      if (seen++ == index) {
        return args_[i];
      }
    }
    return {};
  }

  [[nodiscard]] std::string option(const std::string& name,
                                   const std::string& fallback = {}) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        return args_[i + 1];
      }
    }
    return fallback;
  }

  [[nodiscard]] bool flag(const std::string& name) const {
    for (const std::string& a : args_) {
      if (a == name) {
        return true;
      }
    }
    return false;
  }

 private:
  static bool has_value(const std::string& flag_name) {
    // Flags that consume a value.
    for (const char* f : {"-o", "-k", "--scale", "--seed", "--policy",
                          "--approach", "--mode", "--exec-mode",
                          "--steal-batch", "--chunk", "--strategy",
                          "--rule-parts", "--rules", "--queries-file",
                          "--threads", "--queue", "--requests", "--rate",
                          "--clients", "--think", "--deadline",
                          "--update-batches", "--update-size",
                          "--delete-ratio", "--adds-file", "--deletes-file",
                          "--faults", "--checkpoint-dir", "--load-threads",
                          "--max-threads", "--partitions", "--replicas",
                          "--trace-out", "--metrics-out",
                          "--sample-every", "--equality-mode",
                          "--max-clique", "--partitioner",
                          "--balance-slack", "--split-merge-factor"}) {
      if (flag_name == f) {
        return true;
      }
    }
    return false;
  }
  std::vector<std::string> args_;
};

unsigned load_threads_of(const Args& args) {
  return static_cast<unsigned>(
      std::stoul(args.option("--load-threads", "1")));
}

bool rewrite_mode_of(const Args& args) {
  const std::string mode = args.option("--equality-mode", "naive");
  if (mode != "naive" && mode != "rewrite") {
    std::cerr << "--equality-mode: expected naive|rewrite, got '" << mode
              << "' (using naive)\n";
    return false;
  }
  return mode == "rewrite";
}

/// The one place CLI observability flags are parsed; every command embeds
/// the result into its layer's options struct (the uniform convention).
obs::ObsOptions obs_options_from(const Args& args) {
  obs::ObsOptions o;
  o.trace_out = args.option("--trace-out");
  o.metrics_out = args.option("--metrics-out");
  o.sample_every = static_cast<std::uint32_t>(
      std::stoul(args.option("--sample-every", "1")));
  return o;
}

/// The shared partitioner knobs (`--partitioner`, `--balance-slack`,
/// `--split-merge-factor`), identical across partition / cluster / run /
/// serve-dist and the partition benches.
partition::PartitionerOptions partitioner_options_from(const Args& args) {
  partition::PartitionerOptions popts;
  const std::string name = args.option("--partitioner", "multilevel");
  if (const auto kind = partition::partitioner_kind_from(name)) {
    popts.kind = *kind;
  } else {
    std::cerr << "--partitioner: expected multilevel|hdrf|fennel|ne, got '"
              << name << "' (using multilevel)\n";
  }
  popts.balance_slack = std::stod(args.option("--balance-slack", "0.05"));
  popts.split_merge_factor = static_cast<unsigned>(
      std::stoul(args.option("--split-merge-factor", "1")));
  return popts;
}

std::unique_ptr<partition::OwnerPolicy> make_policy(const Args& args,
                                                    const char* fallback) {
  // --partitioner selects the algorithm behind the graph policy; an
  // explicit --policy hash|lubm|mdc still picks those owner functions.
  std::string name = args.option("--policy");
  if (name.empty()) {
    name = args.option("--partitioner").empty() ? fallback : "graph";
  }
  if (name == "hash") {
    return std::make_unique<partition::HashOwnerPolicy>();
  }
  if (name == "lubm") {
    return std::make_unique<partition::DomainOwnerPolicy>(
        &partition::lubm_university_key, "Dom sp. (LUBM)");
  }
  if (name == "mdc") {
    return std::make_unique<partition::DomainOwnerPolicy>(
        &gen::mdc_field_key, "Dom sp. (MDC)");
  }
  const partition::PartitionerOptions popts = partitioner_options_from(args);
  if (popts.kind != partition::PartitionerKind::kMultilevel) {
    return std::make_unique<partition::StreamingOwnerPolicy>(popts);
  }
  return std::make_unique<partition::GraphOwnerPolicy>(popts);
}

int cmd_gen(const Args& args) {
  const std::string kind = args.positional(0);
  const std::string out = args.option("-o");
  if (kind.empty() || out.empty()) {
    return usage();
  }
  const auto scale =
      static_cast<unsigned>(std::stoul(args.option("--scale", "1")));
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(args.option("--seed", "42")));

  rdf::Dictionary dict;
  rdf::TripleStore store;
  gen::GenStats stats;
  if (kind == "lubm") {
    gen::LubmOptions o;
    o.universities = scale;
    o.seed = seed;
    stats = gen::generate_lubm(o, dict, store);
  } else if (kind == "uobm") {
    gen::UobmOptions o;
    o.base.universities = scale;
    o.base.seed = seed;
    o.hometowns = 10 * scale;
    stats = gen::generate_uobm(o, dict, store);
  } else if (kind == "mdc") {
    gen::MdcOptions o;
    o.fields = scale;
    o.seed = seed;
    stats = gen::generate_mdc(o, dict, store);
  } else if (kind == "sameas") {
    gen::SameAsOptions o;
    o.individuals = 200 * scale;
    o.max_clique_size = static_cast<std::uint32_t>(
        std::stoul(args.option("--max-clique", "6")));
    o.seed = seed;
    stats = gen::generate_sameas(o, dict, store);
  } else {
    return usage();
  }
  if (!save_kb(out, dict, store)) {
    return 1;
  }
  std::cout << "wrote " << out << ": " << stats.instance_triples
            << " instance + " << stats.schema_triples << " schema triples\n";
  return 0;
}

int cmd_info(const Args& args) {
  const std::string path = args.positional(0);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  if (path.empty() || !load_kb(path, dict, store, load_threads_of(args))) {
    return 1;
  }
  const rdf::GraphStats gs = rdf::compute_graph_stats(store, dict);
  ontology::Vocabulary vocab(dict);
  const ontology::Ontology onto = ontology::extract_ontology(store, vocab);

  std::cout << path << ":\n"
            << "  triples:          " << gs.triples << "\n"
            << "  resource nodes:   " << gs.nodes << "\n"
            << "  predicates:       " << gs.predicates << "\n"
            << "  literal objects:  " << gs.literal_objects << "\n"
            << "  avg node degree:  " << util::fmt_double(gs.avg_degree, 2)
            << " (max " << gs.max_degree << ")\n"
            << "  schema axioms:    " << onto.axiom_count() << "\n"
            << "  dictionary terms: " << dict.size() << "\n";
  return 0;
}

/// Parallel-ingest sweep: parse the same file with 1..max threads, report
/// the per-stage breakdown, verify bit-identity against the serial load,
/// and compare the codec footprint with the source text.
int cmd_load_bench(const Args& args) {
  const std::string path = args.positional(0);
  if (path.empty() || ends_with(path, ".snap")) {
    return usage();
  }
  const auto max_threads = static_cast<unsigned>(
      std::stoul(args.option("--max-threads", "8")));

  util::Table table({"threads", "read(s)", "scan(s)", "parse(s)", "merge(s)",
                     "total(s)", "MB/s", "speedup", "identical"});
  std::string golden;       // serial snapshot bytes
  double serial_total = 0;  // serial wall-clock
  std::size_t input_bytes = 0;
  std::size_t codec_bytes = 0;
  std::size_t triples = 0;
  for (unsigned t = 1; t <= max_threads; t *= 2) {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    rdf::IngestOptions opts;
    opts.threads = t;
    rdf::IngestStats stats;
    std::string error;
    util::Stopwatch watch;
    if (!rdf::ingest_file(path, dict, store, stats, opts, &error)) {
      std::cerr << "cannot load " << path << ": " << error << "\n";
      return 1;
    }
    const double total = watch.elapsed_seconds();

    std::ostringstream snap;
    const rdf::SnapshotStats ss = rdf::save_snapshot(snap, dict, store);
    if (t == 1) {
      golden = snap.str();
      serial_total = total;
      input_bytes = stats.bytes;
      codec_bytes = ss.bytes;
      triples = store.size();
    }
    const bool identical = snap.str() == golden;
    table.add_row(
        {std::to_string(stats.threads_used),
         util::fmt_double(stats.read_seconds, 3),
         util::fmt_double(stats.scan_seconds, 3),
         util::fmt_double(stats.parse_seconds, 3),
         util::fmt_double(stats.merge_seconds, 3),
         util::fmt_double(total, 3),
         util::fmt_double(static_cast<double>(stats.bytes) / 1e6 /
                              std::max(total, 1e-9),
                          1),
         util::fmt_double(serial_total / std::max(total, 1e-9), 2),
         identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "BUG: " << t
                << "-thread load differs from the serial load\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << triples << " triples; codec snapshot " << codec_bytes
            << " bytes vs " << input_bytes << " text bytes ("
            << util::fmt_double(100.0 * static_cast<double>(codec_bytes) /
                                    std::max<std::size_t>(input_bytes, 1),
                                1)
            << "% of input)\n";
  return 0;
}

int cmd_materialize(const Args& args) {
  const std::string path = args.positional(0);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  if (path.empty() || !load_kb(path, dict, store, load_threads_of(args))) {
    return 1;
  }
  ontology::Vocabulary vocab(dict);

  reason::MaterializeOptions opts;
  if (args.option("--strategy") == "query") {
    opts.strategy = reason::Strategy::kQueryDriven;
  }
  opts.compile = !args.flag("--no-compile");
  opts.threads = static_cast<unsigned>(std::stoul(args.option("--threads", "1")));
  opts.dispatch_index = !args.flag("--no-dispatch");
  opts.devirtualize = !args.flag("--no-devirt");
  opts.obs = obs_options_from(args);
  reason::EqualityManager eq;
  const bool rewrite = rewrite_mode_of(args);
  if (rewrite) {
    opts.equality_mode = reason::EqualityMode::kRewrite;
    opts.equality = &eq;
  }

  const reason::MaterializeResult r =
      reason::materialize(store, dict, vocab, opts);
  std::cout << "base " << r.base_triples << " (+" << r.schema_triples
            << " schema) -> inferred " << r.inferred << " in "
            << util::format_seconds(r.reason_seconds) << " ("
            << r.compiled_rules << " rules, " << r.iterations
            << " iterations)\n";
  if (rewrite) {
    std::cout << "equality rewrite: " << r.eq_merges << " merges, "
              << r.eq_conflicts << " conflicts; representative-space closure "
              << store.size() << " triples\n";
  }

  // Optional user rule file applied on top of the OWL-Horst closure.
  const std::string rules_path = args.option("--rules");
  if (!rules_path.empty()) {
    std::ifstream rin(rules_path);
    if (!rin) {
      std::cerr << "cannot open rules file " << rules_path << "\n";
      return 1;
    }
    rules::RuleParser parser(dict);
    parser.add_prefix("ub", gen::kUnivBenchNs);
    parser.add_prefix("mdc", gen::kMdcNs);
    std::string error;
    const auto user_rules = parser.parse(rin, &error);
    if (!user_rules) {
      std::cerr << "rule parse error: " << error << "\n";
      return 1;
    }
    reason::ForwardOptions fopts;
    fopts.dict = &dict;
    fopts.threads = opts.threads;
    fopts.dispatch_index = opts.dispatch_index;
    fopts.devirtualize = opts.devirtualize;
    const reason::ForwardStats stats =
        reason::forward_closure(store, *user_rules, fopts);
    std::cout << "user rules (" << user_rules->size() << ") derived "
              << stats.derived << " additional triples\n";
  }

  const std::string out = args.option("-o");
  if (!out.empty()) {
    rdf::EqualityClassMap map;
    if (rewrite) {
      map = eq.export_map();
    }
    if (!save_kb(out, dict, store, rewrite ? &map : nullptr)) {
      return 1;
    }
  }
  return 0;
}

/// Incremental maintenance from the command line: the KB file is the
/// asserted base; the closure is materialized in memory, then one mixed
/// add/delete batch is maintained through reason::Maintainer (DRed or FBF)
/// instead of re-materializing from scratch.
int cmd_update(const Args& args) {
  const std::string path = args.positional(0);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  if (path.empty() || !load_kb(path, dict, store, load_threads_of(args))) {
    return path.empty() ? usage() : 1;
  }
  const std::string adds_path = args.option("--adds-file");
  const std::string dels_path = args.option("--deletes-file");
  if (adds_path.empty() && dels_path.empty()) {
    std::cerr << "update: need --adds-file and/or --deletes-file\n";
    return usage();
  }
  ontology::Vocabulary vocab(dict);
  const auto threads =
      static_cast<unsigned>(std::stoul(args.option("--threads", "1")));

  // The loaded KB is the asserted base; compute the closure it maintains.
  std::vector<rdf::Triple> base = store.triples();
  reason::MaterializeOptions mo;
  mo.threads = threads;
  const reason::MaterializeResult mr =
      reason::materialize(store, dict, vocab, mo);
  std::cout << "closure: " << mr.base_triples << " base -> +" << mr.inferred
            << " inferred\n";

  std::vector<rdf::Triple> adds;
  std::vector<rdf::Triple> dels;
  if (!adds_path.empty() && !load_triples(adds_path, dict, adds)) {
    return 1;
  }
  if (!dels_path.empty() && !load_triples(dels_path, dict, dels)) {
    return 1;
  }

  reason::MaintainOptions opts;
  opts.strategy = args.option("--strategy", "dred") == "fbf"
                      ? reason::MaintainStrategy::kFbf
                      : reason::MaintainStrategy::kDRed;
  opts.threads = threads;
  opts.obs = obs_options_from(args);
  const reason::Maintainer maintainer(dict, vocab, opts);
  const reason::MaintainResult r = maintainer.apply(store, base, adds, dels);
  if (r.schema_changed) {
    std::cerr << "update rejected: the batch touches schema triples — "
                 "re-materialize instead\n";
    return 1;
  }
  std::cout << "base: -" << r.base_deleted << " +" << r.base_added
            << "\noverdelete: " << r.overdeleted << " condemned"
            << (opts.strategy == reason::MaintainStrategy::kFbf
                    ? " (" + std::to_string(r.kept_alive) + " kept alive)"
                    : std::string())
            << " in " << r.overdelete_iterations << " iterations, "
            << util::format_seconds(r.overdelete_seconds)
            << "\nrederive: " << r.rederived << " re-proven one-step, "
            << r.inferred << " total new log entries in "
            << r.rederive_iterations << " iterations, "
            << util::format_seconds(r.rederive_seconds)
            << "\nnet removed " << r.removed << "; closure now "
            << store.size() << " triples ("
            << util::format_seconds(r.total_seconds) << " total)\n";

  const std::string out = args.option("-o");
  if (!out.empty() && !save_kb(out, dict, store)) {
    return 1;
  }
  return 0;
}

int cmd_query(const Args& args) {
  const std::string path = args.positional(0);
  const std::string queries_file = args.option("--queries-file");
  const std::string text = args.positional(1);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  rdf::EqualityClassMap eqmap;  // non-empty after loading a v3 snapshot
  if (path.empty() || (text.empty() && queries_file.empty()) ||
      !load_kb(path, dict, store, load_threads_of(args), &eqmap)) {
    return path.empty() || (text.empty() && queries_file.empty()) ? usage()
                                                                  : 1;
  }
  ontology::Vocabulary vocab(dict);
  if (args.flag("--reason")) {
    reason::MaterializeOptions mopts;
    reason::EqualityManager em;
    if (rewrite_mode_of(args)) {
      mopts.equality_mode = reason::EqualityMode::kRewrite;
      mopts.equality = &em;
    }
    reason::materialize(store, dict, vocab, mopts);
    if (mopts.equality != nullptr) {
      eqmap = em.export_map();
    }
  }
  std::optional<reason::EqualityManager> eq;
  if (!eqmap.empty()) {
    eq = reason::EqualityManager::import_map(eqmap);
  }
  // Answers from a representative-space closure are expanded through the
  // class map; unsupported shapes are reported, never silently wrong.
  const auto run_query =
      [&](const query::SelectQuery& q,
          std::string* why) -> std::optional<query::ResultSet> {
    if (!eq) {
      return query::evaluate(store, q);
    }
    query::EqualityEvalResult r =
        query::evaluate_with_equality(store, q, *eq, vocab.owl_same_as);
    if (r.unsupported) {
      *why = std::move(r.message);
      return std::nullopt;
    }
    return std::move(r.results);
  };
  query::SparqlParser parser(dict);
  parser.add_prefix("ub", gen::kUnivBenchNs);
  parser.add_prefix("mdc", gen::kMdcNs);
  parser.add_prefix("id", gen::kSameAsNs);

  // Batch mode: one query per line (the workload driver's file format).
  if (!queries_file.empty()) {
    std::ifstream in(queries_file);
    if (!in) {
      std::cerr << "cannot open " << queries_file << "\n";
      return 1;
    }
    const std::vector<std::string> queries = serve::load_query_lines(in);
    if (queries.empty()) {
      std::cerr << queries_file << ": no queries\n";
      return 1;
    }
    util::Table table({"#", "results", "time", "query"});
    int failures = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      std::string error;
      const auto q = parser.parse(queries[i], &error);
      if (!q) {
        std::cerr << "query " << i + 1 << ": " << error << "\n";
        ++failures;
        continue;
      }
      util::Stopwatch watch;
      std::string why;
      const auto results = run_query(*q, &why);
      if (!results) {
        std::cerr << "query " << i + 1 << ": unsupported under equality "
                  << "rewriting: " << why << "\n";
        ++failures;
        continue;
      }
      const std::string& full = queries[i];
      table.add_row({std::to_string(i + 1), std::to_string(results->size()),
                     util::format_seconds(watch.elapsed_seconds()),
                     full.size() > 60 ? full.substr(0, 57) + "..." : full});
    }
    table.print(std::cout);
    return failures == 0 ? 0 : 1;
  }

  std::string error;
  const auto q = parser.parse(text, &error);
  if (!q) {
    std::cerr << "query error: " << error << "\n";
    return 1;
  }
  util::Stopwatch watch;
  std::string why;
  const auto results = run_query(*q, &why);
  if (!results) {
    std::cerr << "unsupported under equality rewriting: " << why << "\n";
    return 1;
  }
  std::cout << query::to_text(*results, dict) << results->size()
            << " result(s) in " << util::format_seconds(watch.elapsed_seconds())
            << "\n";
  return 0;
}

/// Shared by serve-bench and serve-dist: the frozen class map of a rewrite
/// run — from a v3 snapshot, or from materializing under --equality-mode
/// rewrite — as the shared_ptr the serving layers hold.
std::shared_ptr<const reason::EqualityManager> serve_equality(
    const Args& args, rdf::Dictionary& dict,
    const ontology::Vocabulary& vocab, rdf::TripleStore& store,
    const rdf::EqualityClassMap& loaded_map) {
  if (args.flag("--reason")) {
    reason::MaterializeOptions mopts;
    auto em = std::make_shared<reason::EqualityManager>();
    const bool rewrite = rewrite_mode_of(args);
    if (rewrite) {
      mopts.equality_mode = reason::EqualityMode::kRewrite;
      mopts.equality = em.get();
    }
    const reason::MaterializeResult r =
        reason::materialize(store, dict, vocab, mopts);
    std::cout << "materialized: +" << r.inferred << " triples";
    if (rewrite) {
      std::cout << " (rewrite: " << r.eq_merges << " merges)";
    }
    std::cout << "\n";
    return rewrite ? em : nullptr;
  }
  if (!loaded_map.empty()) {
    return std::make_shared<reason::EqualityManager>(
        reason::EqualityManager::import_map(loaded_map));
  }
  return nullptr;
}

int cmd_serve_bench(const Args& args) {
  const std::string path = args.positional(0);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  rdf::EqualityClassMap eqmap;
  if (path.empty() ||
      !load_kb(path, dict, store, load_threads_of(args), &eqmap)) {
    return path.empty() ? usage() : 1;
  }
  ontology::Vocabulary vocab(dict);
  const std::shared_ptr<const reason::EqualityManager> equality =
      serve_equality(args, dict, vocab, store, eqmap);

  // The query mix: a file of one-per-line queries, or the LUBM-14 mix.
  std::vector<std::string> queries;
  const std::string queries_file = args.option("--queries-file");
  if (!queries_file.empty()) {
    std::ifstream in(queries_file);
    if (!in) {
      std::cerr << "cannot open " << queries_file << "\n";
      return 1;
    }
    queries = serve::load_query_lines(in);
  } else {
    for (const gen::LubmQuery& q : gen::lubm_queries()) {
      queries.push_back(q.sparql);
    }
  }
  if (queries.empty()) {
    std::cerr << "no queries to serve\n";
    return 1;
  }

  serve::ServiceOptions sopts;
  sopts.threads = std::stoul(args.option("--threads", "2"));
  sopts.queue_capacity = std::stoul(args.option("--queue", "64"));
  sopts.cache_enabled = !args.flag("--no-cache");
  sopts.default_deadline_seconds = std::stod(args.option("--deadline", "0"));
  sopts.prefixes = {{"ub", std::string(gen::kUnivBenchNs)},
                    {"mdc", std::string(gen::kMdcNs)},
                    {"id", std::string(gen::kSameAsNs)}};
  sopts.maintain_strategy = args.option("--strategy", "dred") == "fbf"
                                ? reason::MaintainStrategy::kFbf
                                : reason::MaintainStrategy::kDRed;
  sopts.obs = obs_options_from(args);
  serve::QueryService service(dict, vocab, std::move(store), sopts, {},
                              equality);

  serve::WorkloadOptions wopts;
  wopts.mode = args.option("--mode", "closed") == "open"
                   ? serve::WorkloadMode::kOpenLoop
                   : serve::WorkloadMode::kClosedLoop;
  wopts.total_requests = std::stoul(args.option("--requests", "1000"));
  wopts.seed = std::stoull(args.option("--seed", "42"));
  wopts.arrival_rate_qps = std::stod(args.option("--rate", "1000"));
  wopts.clients = std::stoul(args.option("--clients", "4"));
  wopts.think_seconds = std::stod(args.option("--think", "0"));

  const auto update_batches = std::stoul(args.option("--update-batches", "0"));
  const auto update_size = std::stoul(args.option("--update-size", "10"));
  const double delete_ratio = std::stod(args.option("--delete-ratio", "0"));

  // Optional concurrent writer: periodic instance batches (new students
  // joining Department0), exercising invalidation under live traffic.
  // With --delete-ratio > 0 each batch is mixed: it retracts a slice of the
  // previously added students (incremental maintenance path) alongside the
  // new additions.
  std::thread updater;
  std::atomic<bool> stop_updater{false};
  std::atomic<std::uint64_t> deletes_applied{0};
  if (update_batches > 0) {
    updater = std::thread([&] {
      const auto type = dict.find_iri(
          "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
      const auto grad = dict.find_iri(std::string(gen::kUnivBenchNs) +
                                      "GraduateStudent");
      std::size_t next_id = 0;
      std::vector<rdf::Triple> live;  // added and not yet retracted
      const auto deletes_per_batch = static_cast<std::size_t>(
          delete_ratio * static_cast<double>(update_size));
      for (std::size_t b = 0; b < update_batches && !stop_updater; ++b) {
        std::vector<rdf::Triple> batch;
        service.with_dict_exclusive([&](rdf::Dictionary& d) {
          for (std::size_t i = 0; i < update_size; ++i) {
            const auto stu = d.intern_iri(
                "http://www.Department0.Univ0.edu/ServeBenchStudent" +
                std::to_string(next_id++));
            batch.push_back({stu, type, grad});
          }
          return 0;
        });
        std::vector<rdf::Triple> dels;
        const std::size_t d = std::min(deletes_per_batch, live.size());
        dels.assign(live.end() - static_cast<std::ptrdiff_t>(d), live.end());
        live.resize(live.size() - d);
        const serve::UpdateOutcome outcome =
            dels.empty() ? service.apply_update(batch)
                         : service.apply_update(batch, dels);
        deletes_applied += outcome.maintain.base_deleted;
        live.insert(live.end(), batch.begin(), batch.end());
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (outcome.result.schema_changed) {
          break;
        }
      }
    });
  }

  const serve::WorkloadReport report =
      serve::run_workload(service, queries, wopts);
  stop_updater = true;
  if (updater.joinable()) {
    updater.join();
  }
  service.drain();

  std::cout << "\n--- client view (" << (wopts.mode == serve::WorkloadMode::kOpenLoop
                                             ? "open loop"
                                             : "closed loop")
            << ", " << sopts.threads << " threads, cache "
            << (sopts.cache_enabled ? "on" : "off") << ") ---\n";
  report.print(std::cout);
  std::cout << "\n--- service stats ---\n";
  service.stats().print(std::cout);
  if (delete_ratio > 0 && update_batches > 0) {
    std::cout << "mixed stream: " << deletes_applied.load()
              << " base triples retracted ("
              << (sopts.maintain_strategy == reason::MaintainStrategy::kFbf
                      ? "fbf"
                      : "dred")
              << ")\n";
  }
  std::cout << "throughput " << util::fmt_double(report.throughput_qps(), 1)
            << " q/s\n";
  return 0;
}

int cmd_explain(const Args& args) {
  const std::string path = args.positional(0);
  rdf::Dictionary dict;
  rdf::TripleStore base;
  if (path.empty() || !load_kb(path, dict, base, load_threads_of(args))) {
    return 1;
  }
  const rdf::TermId s = dict.find_iri(args.positional(1));
  const rdf::TermId p = dict.find_iri(args.positional(2));
  const rdf::TermId o = dict.find_iri(args.positional(3));
  if (s == rdf::kAnyTerm || p == rdf::kAnyTerm || o == rdf::kAnyTerm) {
    std::cerr << "one or more terms are not in the knowledge base\n";
    return 1;
  }

  ontology::Vocabulary vocab(dict);
  const rules::CompiledRules compiled =
      reason::compile_ontology(base, vocab);
  rdf::TripleStore materialized;
  materialized.insert_all(base.triples());
  materialized.insert_all(compiled.ground_facts);
  base.insert_all(compiled.ground_facts);  // schema closure is asserted
  reason::ForwardOptions fopts;
  fopts.dict = &dict;
  reason::ForwardEngine(materialized, compiled.rules, fopts).run(0);

  const reason::Explainer explainer(materialized, base, compiled.rules);
  const auto proof = explainer.explain({s, p, o});
  if (!proof) {
    std::cout << "triple is not entailed by the knowledge base\n";
    return 1;
  }
  std::cout << explainer.to_text(*proof, dict);
  return 0;
}

int cmd_partition(const Args& args) {
  const std::string path = args.positional(0);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  if (path.empty() || !load_kb(path, dict, store, load_threads_of(args))) {
    return 1;
  }
  const auto k = static_cast<std::uint32_t>(std::stoul(args.option("-k", "4")));
  const auto policy = make_policy(args, "graph");

  ontology::Vocabulary vocab(dict);
  const partition::DataPartitioning dp =
      partition::partition_data(store, dict, vocab, *policy, k);
  const partition::PartitionMetrics m =
      partition::compute_partition_metrics(dp, dict);

  util::Table table({"partition", "triples", "nodes"});
  for (std::uint32_t p = 0; p < k; ++p) {
    table.add_row({std::to_string(p), std::to_string(dp.parts[p].size()),
                   std::to_string(m.nodes_per_partition[p])});
  }
  table.print(std::cout);
  std::cout << "policy " << policy->name() << " [" << dp.algorithm
            << "]: bal=" << util::fmt_double(m.bal, 1)
            << " IR=" << util::fmt_double(m.input_replication, 3)
            << " RF=" << util::fmt_double(m.replication_factor, 3)
            << " plan.cut=" << dp.plan_metrics.edge_cut
            << " part.time=" << util::format_seconds(dp.partition_seconds)
            << "\n";
  return 0;
}

/// Parse "--faults seed=7,drop=0.05,dup=0.02,corrupt=0.01,delay=0.02,
/// reorder=0.1" into a FaultSpec.  Unknown or malformed entries are
/// reported and skipped rather than crashing the run.
parallel::FaultSpec parse_fault_spec(const std::string& text) {
  parallel::FaultSpec spec;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      std::cerr << "--faults: ignoring malformed entry '" << item << "'\n";
      continue;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "drop") {
        spec.drop = std::stod(value);
      } else if (key == "dup" || key == "duplicate") {
        spec.duplicate = std::stod(value);
      } else if (key == "corrupt") {
        spec.corrupt = std::stod(value);
      } else if (key == "delay") {
        spec.delay = std::stod(value);
      } else if (key == "reorder") {
        spec.reorder = std::stod(value);
      } else if (key == "max-delay-rounds") {
        spec.max_delay_rounds =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "max-faulty-attempts") {
        spec.max_faulty_attempts =
            static_cast<std::uint32_t>(std::stoul(value));
      } else {
        std::cerr << "--faults: unknown key '" << key << "'\n";
      }
    } catch (const std::exception&) {
      std::cerr << "--faults: bad value for '" << key << "': " << value
                << "\n";
    }
  }
  return spec;
}

/// serve-dist: the distributed serving tier.  Shards the (optionally
/// freshly materialized) closure over `--partitions` partitions with
/// `--replicas` replicas each, then drives dist::DistService with the same
/// workload knobs serve-bench takes.  `--faults` wraps the in-memory
/// transport in the seeded FaultyTransport so replica failover and
/// retransmission show up in the stats.
int cmd_serve_dist(const Args& args) {
  const std::string path = args.positional(0);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  rdf::EqualityClassMap eqmap;
  if (path.empty() ||
      !load_kb(path, dict, store, load_threads_of(args), &eqmap)) {
    return path.empty() ? usage() : 1;
  }
  ontology::Vocabulary vocab(dict);
  const std::shared_ptr<const reason::EqualityManager> equality =
      serve_equality(args, dict, vocab, store, eqmap);

  std::vector<std::string> queries;
  const std::string queries_file = args.option("--queries-file");
  if (!queries_file.empty()) {
    std::ifstream in(queries_file);
    if (!in) {
      std::cerr << "cannot open " << queries_file << "\n";
      return 1;
    }
    queries = serve::load_query_lines(in);
  } else {
    for (const gen::LubmQuery& q : gen::lubm_queries()) {
      queries.push_back(q.sparql);
    }
  }
  if (queries.empty()) {
    std::cerr << "no queries to serve\n";
    return 1;
  }

  const auto k = static_cast<std::uint32_t>(
      std::stoul(args.option("--partitions", args.option("-k", "4"))));
  const auto replicas = static_cast<std::uint32_t>(
      std::stoul(args.option("--replicas", "1")));
  const auto policy = make_policy(args, "hash");
  partition::OwnerTable owners =
      partition::partition_data(store, dict, vocab, *policy, k).owners;

  const dist::NodeLayout layout{k, replicas};
  parallel::MemoryTransport inner(layout.num_nodes());
  std::unique_ptr<parallel::FaultyTransport> faulty;
  const std::string faults_arg = args.option("--faults");
  if (!faults_arg.empty()) {
    faulty = std::make_unique<parallel::FaultyTransport>(
        inner, parse_fault_spec(faults_arg));
  }
  parallel::Transport& transport =
      faulty ? static_cast<parallel::Transport&>(*faulty) : inner;

  dist::DistOptions dopts;
  dopts.threads = std::stoul(args.option("--threads", "2"));
  dopts.queue_capacity = std::stoul(args.option("--queue", "64"));
  dopts.cache_enabled = !args.flag("--no-cache");
  dopts.default_deadline_seconds = std::stod(args.option("--deadline", "0"));
  dopts.prefixes = {{"ub", std::string(gen::kUnivBenchNs)},
                    {"mdc", std::string(gen::kMdcNs)},
                    {"id", std::string(gen::kSameAsNs)}};
  dopts.replicas = replicas;
  dopts.equality = equality;
  dopts.same_as = vocab.owl_same_as;
  dopts.obs = obs_options_from(args);
  dist::DistService service(dict, store, std::move(owners), k, transport,
                            dopts);

  serve::WorkloadOptions wopts;
  wopts.mode = args.option("--mode", "closed") == "open"
                   ? serve::WorkloadMode::kOpenLoop
                   : serve::WorkloadMode::kClosedLoop;
  wopts.total_requests = std::stoul(args.option("--requests", "1000"));
  wopts.seed = std::stoull(args.option("--seed", "42"));
  wopts.arrival_rate_qps = std::stod(args.option("--rate", "1000"));
  wopts.clients = std::stoul(args.option("--clients", "4"));
  wopts.think_seconds = std::stod(args.option("--think", "0"));

  const serve::WorkloadReport report =
      dist::run_workload(service, queries, wopts);
  service.drain();

  std::cout << "\n--- client view ("
            << (wopts.mode == serve::WorkloadMode::kOpenLoop ? "open loop"
                                                             : "closed loop")
            << ", " << k << " partitions x " << replicas << " replicas, cache "
            << (dopts.cache_enabled ? "on" : "off") << ") ---\n";
  report.print(std::cout);
  std::cout << "\n--- dist service stats ---\n";
  service.stats().print(std::cout);
  if (faulty) {
    const parallel::FaultLog inj = faulty->injected_faults();
    std::cout << "faults: injected " << inj.total() << " (drop " << inj.drops
              << ", dup " << inj.duplicates << ", corrupt " << inj.corruptions
              << ", delay " << inj.delays << ", reorder " << inj.reorders
              << ")\n";
  }
  std::cout << "throughput " << util::fmt_double(report.throughput_qps(), 1)
            << " q/s\n";
  return 0;
}

int cmd_cluster(const Args& args) {
  const std::string path = args.positional(0);
  if (path.empty()) {
    return usage();
  }
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const auto partitions = static_cast<std::uint32_t>(
      std::stoul(args.option("-k", args.option("--partitions", "4"))));

  // Streaming bootstrap: with a streaming --partitioner the owner table is
  // built *during* load — the reader's chunk_sink feeds each merged chunk
  // to the partitioner, so the full resource graph is never materialized.
  // The resulting plan replays into Algorithm 1 via FixedOwnerPolicy.
  partition::PartitionerOptions popts = partitioner_options_from(args);
  const bool streaming_bootstrap =
      popts.kind != partition::PartitionerKind::kMultilevel &&
      args.option("--policy").empty();
  std::unique_ptr<partition::Partitioner> bootstrap;
  std::function<void(std::span<const rdf::Triple>)> sink;
  if (streaming_bootstrap) {
    // Intern the vocabulary up front so rdf:type triples can be routed
    // subject-only before the ontology pass exists (class IRIs in object
    // position would otherwise become giant hubs).
    const ontology::Vocabulary pre(dict);
    popts.type_predicate = pre.rdf_type;
    bootstrap = partition::make_partitioner(popts, dict, partitions);
    sink = [&bootstrap](std::span<const rdf::Triple> chunk) {
      bootstrap->ingest(chunk);
    };
  }
  if (!load_kb(path, dict, store, load_threads_of(args), nullptr,
               std::move(sink))) {
    return 1;
  }
  ontology::Vocabulary vocab(dict);

  parallel::ParallelOptions opts;
  opts.partitions = partitions;
  opts.obs = obs_options_from(args);
  opts.rule_partitions = static_cast<std::uint32_t>(
      std::stoul(args.option("--rule-parts", "2")));
  const std::string approach = args.option("--approach", "data");
  opts.approach = approach == "rule"     ? parallel::Approach::kRulePartition
                  : approach == "hybrid" ? parallel::Approach::kHybrid
                                         : parallel::Approach::kDataPartition;
  // --exec-mode is the full selector; legacy --mode sync|async|threaded
  // keeps meaning what it always did (async = the event simulator).
  const std::string legacy = args.option("--mode", "sync");
  const std::string mode = args.option(
      "--exec-mode", legacy == "async" ? "async-sim" : legacy);
  opts.mode = mode == "async"            ? parallel::ExecutionMode::kAsync
              : mode == "async-threaded" ? parallel::ExecutionMode::kAsyncThreaded
              : mode == "async-sim"  ? parallel::ExecutionMode::kAsyncSimulated
              : mode == "threaded"
                  ? parallel::ExecutionMode::kThreaded
                  : parallel::ExecutionMode::kSequentialSimulated;
  opts.async_exec.steal = !args.flag("--no-steal");
  opts.async_exec.steal_batch =
      std::stoul(args.option("--steal-batch", "256"));
  opts.async_exec.chunk = std::stoul(args.option("--chunk", "256"));
  if (args.option("--strategy") == "query") {
    opts.local_strategy = reason::Strategy::kQueryDriven;
  }
  std::unique_ptr<partition::OwnerPolicy> policy;
  if (bootstrap) {
    partition::PartitionPlan plan = bootstrap->finalize();
    std::cout << "streamed partitioner " << plan.algorithm << ": "
              << plan.triples_ingested << " triples, RF="
              << util::fmt_double(plan.metrics.replication_factor, 3)
              << " cut=" << plan.metrics.edge_cut << " peak state "
              << plan.peak_state_entries << " entries, "
              << util::format_seconds(plan.partition_seconds) << "\n";
    policy = std::make_unique<partition::FixedOwnerPolicy>(
        std::move(plan.owners), plan.algorithm);
  } else {
    policy = make_policy(args, "graph");
  }
  opts.policy = policy.get();
  opts.build_merged = false;

  parallel::FaultSpec faults;
  const std::string faults_arg = args.option("--faults");
  if (!faults_arg.empty()) {
    faults = parse_fault_spec(faults_arg);
    opts.faults = &faults;
  }
  opts.checkpoint.dir = args.option("--checkpoint-dir");

  const parallel::ParallelResult r =
      parallel::parallel_materialize(store, dict, vocab, opts);
  std::cout << "inferred " << r.inferred << " triples with "
            << r.cluster.results_per_partition.size() << " workers\n"
            << "simulated parallel time: "
            << util::format_seconds(r.cluster.simulated_seconds) << "\n";
  if (r.async) {
    std::cout << "async: " << r.async->deliveries << " deliveries, wait "
              << util::format_seconds(r.async->wait_seconds) << "\n";
  } else {
    std::cout << "rounds: " << r.cluster.rounds
              << "  (reason " << util::format_seconds(r.cluster.reason_seconds)
              << ", io " << util::format_seconds(r.cluster.io_seconds)
              << ", sync " << util::format_seconds(r.cluster.sync_seconds)
              << ")\n";
    if (opts.mode == parallel::ExecutionMode::kAsync ||
        opts.mode == parallel::ExecutionMode::kAsyncThreaded) {
      const parallel::AsyncStats& st = r.cluster.async_stats;
      std::cout << "async: " << st.activations << " activations, "
                << st.steals << " steals (" << st.stolen_tuples
                << " tuples, " << st.steal_derivations << " derived), "
                << st.token_epochs << " token epochs, "
                << st.token_passes << " passes, idle "
                << util::format_seconds(st.idle_seconds) << "\n";
    }
  }
  if (r.metrics) {
    std::cout << "IR=" << util::fmt_double(r.metrics->input_replication, 3)
              << " OR=" << util::fmt_double(r.output_replication, 3) << "\n";
  }
  if (!faults_arg.empty() || !opts.checkpoint.dir.empty()) {
    if (r.async) {
      std::cout << "faults: injected " << r.async->injected.total()
                << " (drop " << r.async->injected.drops << ", dup "
                << r.async->injected.duplicates << ", corrupt "
                << r.async->injected.corruptions << ", delay "
                << r.async->injected.delays << ", reorder "
                << r.async->injected.reorders << "), retries "
                << r.async->retries << ", retry time "
                << util::format_seconds(r.async->retry_seconds) << "\n";
    } else {
      const parallel::RunReport& rep = r.cluster.report;
      std::cout << "faults: injected " << rep.injected.total() << " (drop "
                << rep.injected.drops << ", dup " << rep.injected.duplicates
                << ", corrupt " << rep.injected.corruptions << ", delay "
                << rep.injected.delays << ", reorder "
                << rep.injected.reorders << ")\n"
                << "delivery: " << rep.batches_sent << " batches, "
                << rep.retransmissions << " retransmissions, "
                << rep.redeliveries << " redeliveries, "
                << rep.checksum_failures << " checksum failures, backoff "
                << util::format_seconds(rep.backoff_seconds) << "\n"
                << "checkpoints: " << rep.checkpoints_written << " written";
      if (rep.recovered) {
        std::cout << ", recovered from round " << rep.recovered_from_round;
      }
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  // One RAII session covers every command: configure the sinks up front,
  // flush the trace/metrics files on the way out.
  const obs::Session obs_session(obs_options_from(args));
  if (command == "gen") {
    return cmd_gen(args);
  }
  if (command == "info") {
    return cmd_info(args);
  }
  if (command == "load-bench") {
    return cmd_load_bench(args);
  }
  if (command == "materialize") {
    return cmd_materialize(args);
  }
  if (command == "update") {
    return cmd_update(args);
  }
  if (command == "query") {
    return cmd_query(args);
  }
  if (command == "explain") {
    return cmd_explain(args);
  }
  if (command == "partition") {
    return cmd_partition(args);
  }
  if (command == "cluster" || command == "run") {
    return cmd_cluster(args);
  }
  if (command == "serve-bench") {
    return cmd_serve_bench(args);
  }
  if (command == "serve-dist") {
    return cmd_serve_dist(args);
  }
  return usage();
}
