#!/usr/bin/env python3
"""Summarize a parowl Chrome-trace file (--trace-out output).

    tools/trace_summary.py trace.json [--category parallel] [--markdown]

Prints three views of the trace:
  * per-category span totals (count, total/mean duration),
  * per-worker round skew (for parallel runs: each worker's time per round,
    plus the round's max/min ratio — the straggler factor),
  * per-worker communication breakdown (compute vs send/recv/retransmit),
  * async steal/idle breakdown (--exec-mode async runs: drain/steal/idle
    time per worker, steal counts, stolen tuples, victims),
  * equality-rewrite breakdown (--equality-mode rewrite runs: store
    rebuild passes with remapped-triple counts from reason.eq.rewrite,
    query-time class-map expansion with row amplification from
    reason.eq.expand).

The input is the {"traceEvents": [...]} JSON written by the tracer; only
"X" (complete) events are consumed, "M" metadata names the worker tracks.
"""

import argparse
import collections
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])
    spans = [e for e in events if e.get("ph") == "X"]
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    return spans, names


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


class Table:
    def __init__(self, header):
        self.header = header
        self.rows = []

    def add(self, row):
        self.rows.append([str(c) for c in row])

    def print(self, markdown=False):
        widths = [
            max(len(str(h)), *(len(r[i]) for r in self.rows)) if self.rows
            else len(str(h))
            for i, h in enumerate(self.header)
        ]
        if markdown:
            print("| " + " | ".join(
                str(h).ljust(w) for h, w in zip(self.header, widths)) + " |")
            print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
            for row in self.rows:
                print("| " + " | ".join(
                    c.ljust(w) for c, w in zip(row, widths)) + " |")
        else:
            print("  ".join(str(h).ljust(w)
                            for h, w in zip(self.header, widths)))
            for row in self.rows:
                print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        print()


def category_totals(spans, markdown):
    by_name = collections.defaultdict(lambda: [0, 0.0])
    for e in spans:
        agg = by_name[e["name"]]
        agg[0] += 1
        agg[1] += e.get("dur", 0)
    table = Table(["span", "count", "total", "mean"])
    for name in sorted(by_name):
        count, total = by_name[name]
        table.add([name, count, fmt_us(total), fmt_us(total / count)])
    print("== span totals ==")
    table.print(markdown)


def worker_label(tid, names):
    return names.get(tid, f"track {tid}")


def round_skew(spans, names, markdown):
    # parallel.round spans carry a "round" arg and a per-worker track.
    per_round = collections.defaultdict(dict)  # round -> tid -> dur
    for e in spans:
        if e["name"] != "parallel.round":
            continue
        rnd = e.get("args", {}).get("round")
        if rnd is None:
            continue
        # A worker can appear once per round; keep the sum to be safe.
        per_round[rnd][e["tid"]] = per_round[rnd].get(e["tid"], 0) + e["dur"]
    if not per_round:
        return
    tids = sorted({tid for durs in per_round.values() for tid in durs})
    table = Table(["round"] + [worker_label(t, names) for t in tids]
                  + ["skew (max/min)"])
    for rnd in sorted(per_round):
        durs = per_round[rnd]
        row = [rnd] + [fmt_us(durs.get(t, 0)) for t in tids]
        present = [d for d in durs.values() if d > 0]
        skew = (max(present) / max(min(present), 1)) if present else 0.0
        row.append(f"{skew:.2f}x")
        table.add(row)
    print("== per-worker round skew ==")
    table.print(markdown)


def comm_breakdown(spans, names, markdown):
    stages = ["parallel.compute", "parallel.send", "parallel.recv",
              "parallel.retransmit", "parallel.aggregate"]
    per_worker = collections.defaultdict(lambda: collections.defaultdict(float))
    for e in spans:
        if e["name"] in stages:
            per_worker[e["tid"]][e["name"]] += e["dur"]
    if not per_worker:
        return
    table = Table(["worker"] + [s.split(".", 1)[1] for s in stages]
                  + ["comm share"])
    for tid in sorted(per_worker):
        durs = per_worker[tid]
        compute = durs.get("parallel.compute", 0.0)
        comm = sum(durs.get(s, 0.0) for s in stages[1:])
        total = compute + comm
        share = 100.0 * comm / total if total > 0 else 0.0
        table.add([worker_label(tid, names)]
                  + [fmt_us(durs.get(s, 0.0)) for s in stages]
                  + [f"{share:.1f}%"])
    print("== per-worker communication breakdown ==")
    table.print(markdown)


def async_breakdown(spans, names, markdown):
    # Asynchronous executor (--exec-mode async / async-threaded): each
    # worker's activity lands on its own track as parallel.drain (inbox
    # polls), parallel.steal (thief-side shard evaluations, with victim /
    # tuples / derived args), and parallel.idle (polls with no backlog, no
    # steal target, nothing arriving).  The table shows where each worker's
    # wall time went and how much work it took from whom — the steal /
    # backlog story behind the idle numbers.
    stages = ["parallel.drain", "parallel.steal", "parallel.idle"]
    per_track = collections.defaultdict(
        lambda: collections.defaultdict(float))
    steal_counts = collections.defaultdict(int)
    stolen_tuples = collections.defaultdict(int)
    victims = collections.defaultdict(collections.Counter)
    for e in spans:
        if e["name"] not in stages:
            continue
        per_track[e["tid"]][e["name"]] += e.get("dur", 0)
        if e["name"] == "parallel.steal":
            args = e.get("args", {})
            steal_counts[e["tid"]] += 1
            stolen_tuples[e["tid"]] += args.get("tuples", 0)
            if "victim" in args:
                victims[e["tid"]][args["victim"]] += 1
    if not any(durs.get("parallel.steal") or durs.get("parallel.idle")
               for durs in per_track.values()) and not steal_counts:
        return
    table = Table(["worker", "drain", "steal", "idle", "idle share",
                   "steals", "stolen tuples", "victims"])
    for tid in sorted(per_track):
        durs = per_track[tid]
        total = sum(durs.values())
        idle = durs.get("parallel.idle", 0.0)
        share = 100.0 * idle / total if total > 0 else 0.0
        victim_str = ",".join(
            f"w{v}x{c}" for v, c in sorted(victims[tid].items())) or "-"
        table.add([worker_label(tid, names)]
                  + [fmt_us(durs.get(s, 0.0)) for s in stages]
                  + [f"{share:.1f}%", steal_counts.get(tid, 0),
                     stolen_tuples.get(tid, 0), victim_str])
    print("== async steal/idle breakdown ==")
    table.print(markdown)


def eq_breakdown(spans, markdown):
    # Equality rewriting: reason.eq.rewrite spans are the engine's in-place
    # store rebuilds after sameAs merges (args: keep_end — the prefix that
    # may survive untouched, remapped — triples moved to a new
    # representative), reason.eq.expand spans are query-time class-map
    # expansions (args: rows_in — representative-space solutions, rows_out
    # — expanded answer rows).  The rows_out/rows_in ratio is the
    # amplification the smaller store pays back at answer time.
    rewrites = [e for e in spans if e["name"] == "reason.eq.rewrite"]
    expands = [e for e in spans if e["name"] == "reason.eq.expand"]
    if not rewrites and not expands:
        return
    table = Table(["phase", "count", "total", "mean", "detail"])
    if rewrites:
        total = sum(e.get("dur", 0) for e in rewrites)
        remapped = sum(e.get("args", {}).get("remapped", 0)
                       for e in rewrites)
        table.add(["rewrite (store rebuild)", len(rewrites), fmt_us(total),
                   fmt_us(total / len(rewrites)),
                   f"{remapped} triples remapped"])
    if expands:
        total = sum(e.get("dur", 0) for e in expands)
        rows_in = sum(e.get("args", {}).get("rows_in", 0) for e in expands)
        rows_out = sum(e.get("args", {}).get("rows_out", 0) for e in expands)
        amp = rows_out / rows_in if rows_in else 0.0
        table.add(["expand (query answers)", len(expands), fmt_us(total),
                   fmt_us(total / len(expands)),
                   f"{rows_in} rows in, {rows_out} out ({amp:.2f}x)"])
    print("== equality-rewrite breakdown ==")
    table.print(markdown)


def dist_breakdown(spans, names, markdown):
    # Distributed serving tier: the router's per-request phases
    # (dist.route footprint computation, dist.fanout scatter/gather,
    # dist.merge canonical merge + evaluation) land on the "dist router"
    # track; each replica's scan service time (dist.scan) lands on its own
    # "dist replica p<P>/r<R>" track, so rows double as the per-partition
    # fan-out breakdown.
    stages = ["dist.route", "dist.fanout", "dist.merge", "dist.scan"]
    per_track = collections.defaultdict(
        lambda: collections.defaultdict(float))
    scan_counts = collections.defaultdict(int)
    for e in spans:
        if e["name"] in stages:
            per_track[e["tid"]][e["name"]] += e["dur"]
            if e["name"] == "dist.scan":
                scan_counts[e["tid"]] += 1
    if not per_track:
        return
    table = Table(["track"] + [s.split(".", 1)[1] for s in stages]
                  + ["scans"])
    for tid in sorted(per_track):
        durs = per_track[tid]
        table.add([worker_label(tid, names)]
                  + [fmt_us(durs.get(s, 0.0)) for s in stages]
                  + [scan_counts.get(tid, 0)])
    print("== distributed serving fan-out/merge breakdown ==")
    table.print(markdown)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON written by --trace-out")
    parser.add_argument("--category", help="only spans whose cat matches")
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavored markdown tables")
    args = parser.parse_args()

    spans, names = load_events(args.trace)
    if args.category:
        spans = [e for e in spans if e.get("cat") == args.category]
    if not spans:
        print("no spans in trace", file=sys.stderr)
        return 1
    category_totals(spans, args.markdown)
    round_skew(spans, names, args.markdown)
    comm_breakdown(spans, names, args.markdown)
    async_breakdown(spans, names, args.markdown)
    eq_breakdown(spans, args.markdown)
    dist_breakdown(spans, names, args.markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
