#!/usr/bin/env bash
# Build the test suite under ASan, UBSan, and TSan and run it under each.
# Usage: tools/run_sanitizers.sh [asan|ubsan|tsan ...]   (default: all three)
#
# Uses the `asan`/`ubsan`/`tsan` presets from CMakePresets.json; build trees
# land in build-asan/, build-ubsan/, and build-tsan/ next to the default
# build/.  The TSan pass runs only the concurrency-sensitive tests (the
# threaded forward engine, the serving/parallel layers): TSan slows
# execution ~10x and the remaining tests are single-threaded.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
presets=("${@:-asan ubsan tsan}")
# Word-split the default so `run_sanitizers.sh` runs all of them.
read -r -a presets <<<"${presets[*]}"

tsan_filter='Forward|EngineEquivalence|Serve|Worker|Cluster|Async|Parallel|Updater|Snapshot|Fault|Ingest|Obs|Dist|Incremental|SameAs'

for preset in "${presets[@]}"; do
  case "$preset" in
    asan|ubsan|tsan) ;;
    *) echo "unknown preset '$preset' (want asan, ubsan, or tsan)" >&2; exit 2 ;;
  esac
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test ==="
  if [ "$preset" = tsan ]; then
    ctest --preset "$preset" -j "$jobs" -R "$tsan_filter"
  else
    ctest --preset "$preset" -j "$jobs"
  fi
done

echo "=== sanitizers clean: ${presets[*]} ==="
