#!/usr/bin/env bash
# Build the test suite under ASan and UBSan and run it under both.
# Usage: tools/run_sanitizers.sh [asan|ubsan]   (default: both)
#
# Uses the `asan`/`ubsan` presets from CMakePresets.json; build trees land
# in build-asan/ and build-ubsan/ next to the default build/.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
presets=("${@:-asan ubsan}")
# Word-split the default so `run_sanitizers.sh` runs both.
read -r -a presets <<<"${presets[*]}"

for preset in "${presets[@]}"; do
  case "$preset" in
    asan|ubsan) ;;
    *) echo "unknown preset '$preset' (want asan or ubsan)" >&2; exit 2 ;;
  esac
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$jobs"
done

echo "=== sanitizers clean: ${presets[*]} ==="
