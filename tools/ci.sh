#!/usr/bin/env bash
# The commit gate: configure, build, run the tier1 test label (fast,
# deterministic), then an ASan pass over the fault-tolerance surface.
#
#   tools/ci.sh           # tier1 + asan subset
#   tools/ci.sh --full    # adds tier2 (stress/property/fault sweeps)
#
# Tier labels are assigned in tests/CMakeLists.txt via parowl_add_test:
# tier1 is every fast deterministic suite, tier2 the slower sweeps.  The
# ASan subset covers the transport/worker/cluster/fault layers plus the
# ingest pipeline, triple codec, partitioner suite (streaming state
# machines + split-merge), and incremental maintenance (DRed/FBF store
# rebuilds) — the places where serialization and concurrency bugs would
# live.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
full=0
[ "${1:-}" = "--full" ] && full=1

echo "=== configure ==="
cmake --preset default

echo "=== build ==="
cmake --build --preset default -j "$jobs"

echo "=== tier1 tests ==="
ctest --preset default -j "$jobs" -L tier1

if [ "$full" = 1 ]; then
  echo "=== tier2 tests ==="
  ctest --preset default -j "$jobs" -L tier2
fi

echo "=== asan subset (transport/worker/cluster/fault/async/ingest/codec/dist/incremental/sameas/partition) ==="
cmake --preset asan
cmake --build --preset asan -j "$jobs" \
  --target transport_test worker_test cluster_test fault_injection_test \
  async_test async_equivalence_test codec_test ingest_equivalence_test \
  dist_test incremental_test incremental_equivalence_test \
  sameas_equivalence_test sameas_serve_test graph_partition_test
ctest --preset asan -j "$jobs" -R 'Transport|Worker|Cluster|Fault|Async|Ingest|Codec|Varint|Zigzag|TripleBlock|TermTable|Dist|Incremental|SameAs|Partition|Streaming|SplitMerge'

echo "=== tsan subset (obs, dist executor + replica RCU, async steal/token, incremental serve loop, equality rewrite, reader->partitioner chunk sink) ==="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" --target obs_test dist_test async_test \
  incremental_test sameas_equivalence_test sameas_serve_test \
  graph_partition_test
ctest --preset tsan -j "$jobs" -R 'Obs|Dist|Async|IncrementalServe|SameAs|StreamingPartitioner'

echo "=== ci green ==="
