#!/usr/bin/env bash
# Regenerate the checked-in google-benchmark baselines:
#   bench/BENCH_reason.json — forward-engine ablation sweep (dispatch index
#     on/off × devirtualized joins on/off × 1/2/4/8 matching threads,
#     LUBM-1 and MDC-2).
#   bench/BENCH_ingest.json — parallel-ingest thread sweep (N-Triples and
#     Turtle), serial-parse baseline, codec encode/decode throughput and
#     bytes-per-triple, snapshot save/load.
#   bench/BENCH_serving.json — distributed serving tail-latency sweep
#     (p50/p99 vs partition count × replica count under the open-loop
#     driver, plus the single-store serve baseline).
#   bench/BENCH_async.json — executor ablation (sync rounds vs the
#     asynchronous token-ring executor, steal on/off, threaded) with
#     measured wall-clock p50/p99 per configuration.
#   bench/BENCH_incremental.json — incremental maintenance sweep: mixed
#     add+delete batches through DRed and FBF vs additions-only
#     incremental closure vs full re-materialization, batch sizes
#     {1, 10, 100} students.
#   bench/BENCH_sameas.json — equality-rewriting sweep on the clique-heavy
#     generator: naive sameAs closure vs representative rewriting × clique
#     density {3, 6, 10} × threads {1, 4}, plus query-time class-map
#     expansion vs naive BGP evaluation.
#   bench/BENCH_partition.json — Fig. 5 partitioner comparison: the seven
#     owner policies (multilevel graph, domain, hash, HDRF, Fennel, NE,
#     HDRF+split-merge) × 2/4/8/16 partitions with speedup/IR/OR/RF/cut
#     counters.
# Usage: tools/record_bench.sh [extra benchmark args...]
#
# The baselines answer "did this PR make a hot path slower?" — compare a
# fresh run against the checked-in files with benchmark/tools/compare.py
# or by eye.  Absolute times are machine-bound; the meaningful columns are
# the ratios between sweep points.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
cmake --preset default
cmake --build --preset default -j "$jobs" --target micro_reason \
  extension_ingest extension_distributed_serving ablation_async \
  extension_incremental extension_sameas fig5_partitioner_comparison

build/bench/micro_reason \
  --benchmark_filter='BM_Closure' \
  --benchmark_out=bench/BENCH_reason.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_reason.json"

build/bench/extension_ingest \
  --benchmark_out=bench/BENCH_ingest.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_ingest.json"

build/bench/extension_distributed_serving \
  --benchmark_out=bench/BENCH_serving.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_serving.json"

build/bench/ablation_async \
  --benchmark_out=bench/BENCH_async.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_async.json"

build/bench/extension_incremental \
  --benchmark_out=bench/BENCH_incremental.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_incremental.json"

build/bench/extension_sameas \
  --benchmark_out=bench/BENCH_sameas.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_sameas.json"

build/bench/fig5_partitioner_comparison \
  --benchmark_out=bench/BENCH_partition.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_partition.json"
