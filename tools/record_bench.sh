#!/usr/bin/env bash
# Regenerate bench/BENCH_reason.json — the checked-in google-benchmark
# baseline for the forward-engine ablation sweep (dispatch index on/off ×
# devirtualized joins on/off × 1/2/4/8 matching threads, LUBM-1 and MDC-2).
# Usage: tools/record_bench.sh [extra micro_reason args...]
#
# The baseline answers "did this PR make the materializer hot path slower?"
# — compare a fresh run against the checked-in file with
# benchmark/tools/compare.py or by eye.  Absolute times are machine-bound;
# the meaningful columns are the ratios between sweep points.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
cmake --preset default
cmake --build --preset default -j "$jobs" --target micro_reason

build/bench/micro_reason \
  --benchmark_filter='BM_Closure' \
  --benchmark_out=bench/BENCH_reason.json \
  --benchmark_out_format=json \
  "$@"

echo "wrote bench/BENCH_reason.json"
